"""Suite for :mod:`repro.aio.server` — the socket serving tier.

The contract under test, network-level:

1. **wire equivalence** (the acceptance-criterion property) — any
   interleaving of >= 3 real socket clients receives, for every
   request, a response payload identical to the sequential
   :class:`DCCHost` baseline's answer for that spec, across a cold
   pass, a warm (result-cache-served) pass, and passes forced through
   TTL expiry and LRU eviction of every entry;
2. **protocol** — out-of-order completion correlated by ``id``/``seq``,
   the ``stats`` op on both transports, per-connection sequence
   numbering;
3. **metrics** — exact (not smoke) counter and latency-percentile
   values on a deterministic scripted workload driven through an
   injected tick clock, and agreement between the ``stats`` payload and
   what ``repro info`` prints.

Fault-injection coverage for the same tier (disconnects, malformed and
oversized lines, drain-on-close) lives in ``tests/test_faults.py``.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aio import (
    AsyncDCCHost,
    DCCServer,
    LatencyRecorder,
    ResultCache,
    format_response,
    serving_stats,
)
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.host import DCCHost
from tests.strategies import multilayer_graphs, search_parameters

pytestmark = []  # network marking is per-class; metrics tests need no socket


def ring_graph(n=12, layers=2):
    graph = MultiLayerGraph(layers, vertices=range(n))
    for layer in range(layers):
        for i in range(n):
            graph.add_edge(layer, i, (i + 1) % n)
    return graph


def wire(result):
    """The canonical wire payload of a result, timing fields dropped."""
    payload = format_response(0, None, result=result)
    del payload["seq"], payload["elapsed_s"]
    return payload


def strip(response):
    """A received response reduced to its comparable payload."""
    payload = dict(response)
    for field in ("seq", "id", "elapsed_s"):
        payload.pop(field, None)
    return payload


def sequential_wire_baseline(graphs, specs, **host_options):
    """Each spec's canonical wire payload from a synchronous host."""
    host_options.setdefault("jobs", 1)
    with DCCHost(**host_options) as host:
        for name, graph in graphs.items():
            host.attach(name, graph)
        return [wire(result) for result in host.search_many(specs)]


class LineClient:
    """One real socket client speaking the JSON-lines protocol."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port, limit=1 << 20
        )
        return cls(reader, writer)

    async def send(self, entry):
        self.writer.write((json.dumps(entry) + "\n").encode("utf-8"))
        await self.writer.drain()

    async def send_raw(self, data):
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def ask(self, entry):
        await self.send(entry)
        return await self.recv()

    async def run_script(self, specs, order, tag):
        """Pipeline ``specs`` in ``order``; responses mapped by index."""
        for position, index in enumerate(order):
            await self.send(dict(specs[index],
                                 id="{}-{}-{}".format(tag, position, index)))
        responses = {}
        for _ in order:
            response = await self.recv()
            index = int(response["id"].rsplit("-", 1)[1])
            responses[index] = response
        return responses

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


MIXED_SPECS = [
    {"graph": "fig", "d": 3, "s": 2, "k": 2},
    {"graph": "ring", "d": 2, "s": 1, "k": 2},
    {"graph": "fig", "d": 3, "s": 2, "k": 2},  # duplicate
    {"graph": "fig", "d": 2, "s": 2, "k": 2, "method": "greedy"},
    {"graph": "ring", "d": 2, "s": 2, "k": 1},
]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# 1. wire equivalence over real sockets
# ----------------------------------------------------------------------


@pytest.mark.network
class TestWireEquivalence:
    def test_single_client_roundtrip_matches_baseline(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                async with DCCServer(host, port=0) as server:
                    client = await LineClient.connect(server.port)
                    response = await client.ask(
                        {"id": "q1", "graph": "fig", "d": 3, "s": 2, "k": 2}
                    )
                    await client.close()
                    return response

        response = asyncio.run(serve())
        assert response["ok"] and response["id"] == "q1"
        assert response["seq"] == 1
        [want] = sequential_wire_baseline(
            {"fig": graph}, [{"graph": "fig", "d": 3, "s": 2, "k": 2}]
        )
        assert strip(response) == want

    def test_three_clients_cold_warm_evicted_all_match_baseline(self):
        # The scripted core of the acceptance criterion: three socket
        # clients pipelining interleaved spec orders over two graphs in
        # one engine slot, three times over — cold, warm (served by the
        # result cache) and after every entry has been LRU-evicted by a
        # one-entry cache.  Every response payload must equal the
        # sequential baseline's.
        graphs = {"fig": paper_figure1_graph(), "ring": ring_graph()}
        baseline = sequential_wire_baseline(graphs, MIXED_SPECS,
                                            max_engines=1)
        orders = [
            list(range(len(MIXED_SPECS))),
            list(reversed(range(len(MIXED_SPECS)))),
            [2, 0, 4, 1, 3],
        ]
        tiny_cache = ResultCache(max_entries=1)

        async def pass_over(port, tag):
            clients = [await LineClient.connect(port) for _ in orders]
            try:
                return await asyncio.gather(*(
                    client.run_script(MIXED_SPECS, order,
                                      "{}{}".format(tag, lag))
                    for lag, (client, order) in
                    enumerate(zip(clients, orders))
                ))
            finally:
                for client in clients:
                    await client.close()

        async def serve():
            async with AsyncDCCHost(max_engines=1, jobs=1) as host:
                for name, graph in graphs.items():
                    host.attach(name, graph)
                async with DCCServer(host, port=0) as server:
                    cold = await pass_over(server.port, "c")
                    warm = await pass_over(server.port, "w")
                    cached_after_warm = host.requests_cached
                    # Swap in a one-slot cache: every subsequent lookup
                    # evicts its predecessor, so the third pass serves
                    # recomputed (post-eviction) results throughout.
                    host._results = tiny_cache
                    evicted = await pass_over(server.port, "e")
                    return (cold + warm + evicted, cached_after_warm,
                            host.info())

        passes, cached_after_warm, info = asyncio.run(serve())
        for per_client in passes:
            for index, response in per_client.items():
                assert response["ok"], response
                assert strip(response) == baseline[index], \
                    MIXED_SPECS[index]
        # The warm pass really was served across time, not recomputed
        # (the cold pass populates 4 distinct specs; every warm request
        # that didn't coalesce must hit), and the eviction pass really
        # did thrash the one-slot cache.
        assert cached_after_warm >= len(MIXED_SPECS)
        assert tiny_cache.evictions > 0
        assert info["result_cache"]["entries"] <= 1

    @given(st.data())
    @settings(max_examples=3, deadline=None)
    def test_property_socket_interleavings_equal_sequential(self, data):
        # Hypothesis-shaped acceptance criterion: arbitrary graphs,
        # arbitrary valid parameters, three socket clients pipelining
        # drawn permutations (guaranteed duplicate included), over one
        # engine slot — cold, warm, and after a scripted TTL expiry of
        # every cache entry.  Every response equals the sequential
        # baseline, bitwise at the wire level.
        graph_a = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        graph_b = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph_a))
        db, sb, kb = data.draw(search_parameters(graph_b))
        specs = [
            {"graph": "a", "d": d, "s": s, "k": k},
            {"graph": "b", "d": db, "s": sb, "k": kb},
            {"graph": "a", "d": d, "s": s, "k": k},  # guaranteed duplicate
        ]
        graphs = {"a": graph_a, "b": graph_b}
        orders = [data.draw(st.permutations(range(len(specs))))
                  for _ in range(3)]
        baseline = sequential_wire_baseline(graphs, specs, max_engines=1)
        clock = FakeClock()
        cache = ResultCache(ttl=60.0, clock=clock)

        async def pass_over(port, tag):
            clients = [await LineClient.connect(port) for _ in orders]
            try:
                return await asyncio.gather(*(
                    client.run_script(specs, order, "{}{}".format(tag, lag))
                    for lag, (client, order) in
                    enumerate(zip(clients, orders))
                ))
            finally:
                for client in clients:
                    await client.close()

        async def serve():
            async with AsyncDCCHost(max_engines=1, jobs=1,
                                    result_cache=cache) as host:
                for name, graph in graphs.items():
                    host.attach(name, graph)
                async with DCCServer(host, port=0) as server:
                    cold = await pass_over(server.port, "c")
                    warm = await pass_over(server.port, "w")
                    clock.advance(61.0)  # expire every entry
                    expired = await pass_over(server.port, "x")
                    return cold + warm + expired

        for per_client in asyncio.run(serve()):
            for index, response in per_client.items():
                assert response["ok"], response
                assert strip(response) == baseline[index], specs[index]
        assert cache.expirations > 0


# ----------------------------------------------------------------------
# 2. protocol details
# ----------------------------------------------------------------------


@pytest.mark.network
class TestProtocol:
    def test_stats_op_reports_serving_metrics(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                async with DCCServer(host, port=0) as server:
                    client = await LineClient.connect(server.port)
                    for _ in range(2):  # cold + warm
                        await client.ask(
                            {"graph": "fig", "d": 3, "s": 2, "k": 2}
                        )
                    response = await client.ask({"op": "stats", "id": "m"})
                    await client.close()
                    return response, host.info()

        response, info = asyncio.run(serve())
        assert response["ok"] and response["id"] == "m"
        stats = response["stats"]
        assert stats["serving"]["requests_accepted"] == 1
        assert stats["serving"]["requests_cached"] == 1
        assert stats["serving"]["result_cache"]["hits"] == 1
        assert stats["serving"]["latency"]["count"] == 2
        assert stats["server"]["connections_accepted"] == 1
        assert stats["server"]["requests_received"] == 3
        # The payload is the same info() surface the host reports.
        assert stats["serving"]["max_pending"] == info["max_pending"]
        assert stats["serving"]["result_cache"]["max_entries"] == \
            info["result_cache"]["max_entries"]

    def test_unknown_op_and_missing_keys_answer_typed_errors(self):
        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", paper_figure1_graph())
                async with DCCServer(host, port=0) as server:
                    client = await LineClient.connect(server.port)
                    bogus = await client.ask({"op": "bogus"})
                    partial = await client.ask({"graph": "fig", "d": 3})
                    healthy = await client.ask(
                        {"graph": "fig", "d": 3, "s": 2, "k": 2}
                    )
                    await client.close()
                    return bogus, partial, healthy

        bogus, partial, healthy = asyncio.run(serve())
        assert not bogus["ok"] and bogus["error_type"] == "ProtocolError"
        assert not partial["ok"] and partial["error_type"] == "ProtocolError"
        assert healthy["ok"]

    def test_per_connection_sequence_numbers(self):
        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", paper_figure1_graph())
                async with DCCServer(host, port=0) as server:
                    first = await LineClient.connect(server.port)
                    second = await LineClient.connect(server.port)
                    a1 = await first.ask({"op": "stats"})
                    a2 = await first.ask({"op": "stats"})
                    b1 = await second.ask({"op": "stats"})
                    for client in (first, second):
                        await client.close()
                    return a1, a2, b1

        a1, a2, b1 = asyncio.run(serve())
        assert (a1["seq"], a2["seq"]) == (1, 2)
        assert b1["seq"] == 1  # sequences are per connection

    def test_stdio_serve_answers_stats_op(self, tmp_path, monkeypatch,
                                          capsys):
        import io

        from repro.cli import main

        spec = tmp_path / "serve.json"
        spec.write_text('{"graphs": {"fig": "figure1"}}')
        monkeypatch.setattr("sys.stdin", io.StringIO(
            '{"id": "q", "graph": "fig", "d": 3, "s": 2, "k": 2}\n'
            '{"id": "q2", "graph": "fig", "d": 3, "s": 2, "k": 2}\n'
            '{"id": "m", "op": "stats"}\n'
        ))
        assert main(["serve", str(spec), "--jobs", "1"]) == 0
        responses = {json.loads(line)["id"]: json.loads(line)
                     for line in capsys.readouterr().out.splitlines()}
        stats = responses["m"]["stats"]
        assert responses["m"]["ok"]
        assert "server" not in stats  # stdio: no socket tier in front
        # The stats op may be answered while the searches are still in
        # flight, so only monotone facts are assertable here: the first
        # search was accepted before the op ran, and the full metrics
        # surface is present.
        assert stats["serving"]["requests_accepted"] >= 1
        assert "result_cache" in stats["serving"]
        assert "latency" in stats["serving"]


# ----------------------------------------------------------------------
# 3. metrics: exact values, and agreement with `repro info`
# ----------------------------------------------------------------------


class TestMetricsExact:
    def test_latency_recorder_window_and_percentiles(self):
        recorder = LatencyRecorder(window=4)
        for value in range(1, 11):
            recorder.record(float(value))
        # Lifetime counters are exact over all ten samples...
        assert recorder.count == 10
        assert recorder.total == 55.0
        assert recorder.max == 10.0
        # ...while the ring window holds exactly the last four (7..10),
        # making nearest-rank percentiles exact.
        assert recorder.percentile(50) == 8.0
        assert recorder.percentile(90) == 10.0
        assert recorder.percentile(25) == 7.0
        snapshot = recorder.snapshot()
        assert snapshot["window_fill"] == 4
        assert snapshot["p50_s"] == 8.0
        assert snapshot["p99_s"] == 10.0
        assert LatencyRecorder().snapshot()["p50_s"] is None

    def test_scripted_workload_produces_exact_metrics(self):
        # The host reads its clock exactly twice per request (accept,
        # resolve); a tick-by-one clock therefore makes every latency
        # exactly 1.0 when requests are awaited sequentially — so the
        # whole snapshot is assertable to the digit, cache hits and
        # misses alike.
        ticks = iter(range(1, 1000))
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(
                jobs=1, clock=lambda: float(next(ticks))
            ) as host:
                host.attach("fig", graph)
                await host.search("fig", 3, 2, 2)            # cold
                await host.search("fig", 3, 2, 2)            # cache hit
                await host.search("fig", 2, 2, 2)            # cold
                await host.search("fig", 2, 2, 2)            # cache hit
                return host.info()

        info = asyncio.run(serve())
        assert info["requests_accepted"] == 2
        assert info["requests_cached"] == 2
        assert info["requests_coalesced"] == 0
        assert info["result_cache"]["hits"] == 2
        assert info["result_cache"]["misses"] == 2
        assert info["result_cache"]["insertions"] == 2
        assert info["pending"] == {}
        latency = info["latency"]
        assert latency["count"] == 4
        assert latency["total_s"] == 4.0
        assert latency["mean_s"] == 1.0
        assert latency["max_s"] == 1.0
        assert latency["p50_s"] == 1.0
        assert latency["p90_s"] == 1.0
        assert latency["p99_s"] == 1.0
        assert latency["window_fill"] == 4

    def test_repro_info_agrees_with_the_stats_payload(self, capsys):
        # `repro info` prints its serve_* lines from the same
        # serving_stats() payload the protocol's stats op reports; the
        # two surfaces must quote identical values.
        from repro.cli import main

        assert main(["info", "figure1"]) == 0
        printed = dict(
            line.split(": ", 1)
            for line in capsys.readouterr().out.splitlines() if ": " in line
        )

        async def payload():
            async with AsyncDCCHost() as host:
                return serving_stats(host)["serving"]

        serving = asyncio.run(payload())
        assert printed["serve_max_pending"] == str(serving["max_pending"])
        assert printed["serve_coalescing"] == str(serving["coalescing"])
        assert printed["serve_result_cache_entries"] == \
            str(serving["result_cache"]["max_entries"])
        assert printed["serve_result_cache_ttl"] == \
            str(serving["result_cache"]["ttl"])
        assert printed["serve_latency_window"] == \
            str(serving["latency"]["window"])
