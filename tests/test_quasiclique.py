"""Tests for the quasi-clique predicates and the MiMAG-style miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mimag import _diversify, _maximal_only, mimag
from repro.baselines.quasiclique import (
    is_cross_graph_quasi_clique,
    is_quasi_clique,
    quasi_clique_diameter_bound,
    quasi_clique_threshold,
    supporting_layers,
)
from repro.graph import MultiLayerGraph, replicate_layer
from repro.utils.errors import ParameterError
from tests.strategies import multilayer_graphs


def clique_and_path():
    g = MultiLayerGraph(2, vertices=range(7))
    # Layer 0: K4 {0..3} plus a path 3-4-5-6; layer 1: K4 only.
    block = (0, 1, 2, 3)
    for layer in (0, 1):
        for i, u in enumerate(block):
            for v in block[i + 1:]:
                g.add_edge(layer, u, v)
    g.add_edge(0, 3, 4)
    g.add_edge(0, 4, 5)
    g.add_edge(0, 5, 6)
    return g


class TestThreshold:
    def test_gamma_one_is_clique(self):
        assert quasi_clique_threshold(1.0, 5) == 4

    def test_gamma_zero(self):
        assert quasi_clique_threshold(0.0, 5) == 0

    def test_rounding_up(self):
        # 0.8 * 4 = 3.2 -> 4.
        assert quasi_clique_threshold(0.8, 5) == 4
        # 0.8 * 5 = 4.0 exactly -> 4.
        assert quasi_clique_threshold(0.8, 6) == 4

    def test_invalid_gamma(self):
        with pytest.raises(ParameterError):
            quasi_clique_threshold(1.5, 3)


class TestPredicates:
    def test_clique_is_quasi_clique(self):
        g = clique_and_path()
        assert is_quasi_clique(g, 0, {0, 1, 2, 3}, 1.0)
        assert is_quasi_clique(g, 1, {0, 1, 2, 3}, 0.8)

    def test_path_is_not_dense(self):
        g = clique_and_path()
        assert not is_quasi_clique(g, 0, {3, 4, 5, 6}, 0.8)
        assert is_quasi_clique(g, 0, {4, 5}, 1.0)

    def test_empty_set(self):
        assert not is_quasi_clique(clique_and_path(), 0, set(), 0.5)

    def test_unknown_vertex(self):
        assert not is_quasi_clique(clique_and_path(), 0, {0, 99}, 0.5)

    def test_supporting_layers(self):
        g = clique_and_path()
        assert supporting_layers(g, {0, 1, 2, 3}, 0.8) == [0, 1]
        assert supporting_layers(g, {4, 5}, 1.0) == [0]

    def test_cross_graph_all_layers(self):
        g = clique_and_path()
        assert is_cross_graph_quasi_clique(g, {0, 1, 2, 3}, 0.8)
        assert not is_cross_graph_quasi_clique(g, {4, 5}, 1.0)

    def test_cross_graph_min_support(self):
        g = clique_and_path()
        assert is_cross_graph_quasi_clique(g, {4, 5}, 1.0, min_support=1)

    def test_cross_graph_explicit_layers(self):
        g = clique_and_path()
        assert is_cross_graph_quasi_clique(g, {4, 5}, 1.0, layers=[0])

    def test_diameter_bound(self):
        assert quasi_clique_diameter_bound(0.5) == 2
        assert quasi_clique_diameter_bound(0.9) == 2
        assert quasi_clique_diameter_bound(0.4) is None


class TestMiner:
    def test_finds_planted_clique(self):
        g = replicate_layer(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 3
        )
        result = mimag(g, gamma=0.8, min_size=3, min_support=2)
        assert frozenset({0, 1, 2, 3}) in result.clusters
        assert not result.truncated

    def test_min_size_respected(self):
        g = replicate_layer([(0, 1), (1, 2), (0, 2)], 2)
        result = mimag(g, gamma=1.0, min_size=4, min_support=1)
        assert result.clusters == []

    def test_support_respected(self):
        g = MultiLayerGraph(3, vertices=range(3))
        for u, v in ((0, 1), (1, 2), (0, 2)):
            g.add_edge(0, u, v)
        # Triangle only on layer 0 -> support 1.
        assert mimag(g, gamma=1.0, min_size=3, min_support=2).clusters == []
        found = mimag(g, gamma=1.0, min_size=3, min_support=1).clusters
        assert frozenset({0, 1, 2}) in found

    def test_invalid_parameters(self):
        g = clique_and_path()
        with pytest.raises(ParameterError):
            mimag(g, 0.8, 1, 1)
        with pytest.raises(ParameterError):
            mimag(g, 0.8, 3, 9)

    def test_node_budget_truncates(self):
        g = replicate_layer(
            [(i, j) for i in range(12) for j in range(i + 1, 12)], 2
        )
        result = mimag(g, gamma=0.8, min_size=3, min_support=1,
                       node_budget=10)
        assert result.truncated

    def test_max_cluster_size(self):
        g = replicate_layer(
            [(i, j) for i in range(6) for j in range(i + 1, 6)], 2
        )
        result = mimag(g, gamma=1.0, min_size=3, min_support=2,
                       max_cluster_size=4)
        assert all(len(c) <= 4 for c in result.all_maximal)

    @given(multilayer_graphs(max_vertices=7, max_layers=2))
    @settings(max_examples=25, deadline=None)
    def test_every_cluster_satisfies_definition(self, graph):
        result = mimag(graph, gamma=0.8, min_size=2, min_support=1,
                       node_budget=5000)
        for cluster in result.all_maximal:
            assert len(supporting_layers(graph, cluster, 0.8)) >= 1
            assert len(cluster) >= 2

    def test_complete_enumeration_on_small_graph(self):
        # Exhaustive check: on a tiny graph the miner finds every maximal
        # cross-graph quasi-clique that brute force finds.
        from itertools import combinations
        g = clique_and_path()
        gamma, min_size, min_support = 0.8, 3, 2
        result = mimag(g, gamma, min_size, min_support, node_budget=100000)
        assert not result.truncated
        valid = []
        vertices = sorted(g.vertices())
        for size in range(min_size, len(vertices) + 1):
            for combo in combinations(vertices, size):
                layers = supporting_layers(g, combo, gamma)
                if len(layers) >= min_support:
                    valid.append(frozenset(combo))
        maximal = [
            c for c in valid if not any(c < other for other in valid)
        ]
        assert sorted(map(sorted, result.all_maximal)) == sorted(
            map(sorted, maximal)
        )


class TestPostprocessing:
    def test_maximal_only(self):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({4})]
        kept = _maximal_only(sets)
        assert frozenset({1, 2}) not in kept
        assert frozenset({1, 2, 3}) in kept
        assert frozenset({4}) in kept

    def test_diversify_drops_redundant(self):
        clusters = [
            frozenset(range(10)),
            frozenset(range(9)),       # 90% covered already
            frozenset(range(20, 24)),  # novel
        ]
        kept = _diversify(clusters, redundancy=0.25)
        assert frozenset(range(10)) in kept
        assert frozenset(range(9)) not in kept
        assert frozenset(range(20, 24)) in kept
