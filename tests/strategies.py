"""Shared hypothesis strategies for multi-layer graphs."""

from hypothesis import strategies as st

from repro.graph import MultiLayerGraph


@st.composite
def multilayer_graphs(draw, max_vertices=10, max_layers=4,
                      edge_probability=0.45):
    """A random small multi-layer graph on integer vertices."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    layers = draw(st.integers(min_value=1, max_value=max_layers))
    graph = MultiLayerGraph(layers, vertices=range(n))
    for layer in range(layers):
        for i in range(n):
            for j in range(i + 1, n):
                if draw(
                    st.floats(min_value=0.0, max_value=1.0)
                ) < edge_probability:
                    graph.add_edge(layer, i, j)
    return graph


@st.composite
def graph_with_layer_subset(draw, max_vertices=10, max_layers=4):
    """A random graph plus a non-empty subset of its layers."""
    graph = draw(multilayer_graphs(max_vertices, max_layers))
    layers = draw(
        st.sets(
            st.integers(min_value=0, max_value=graph.num_layers - 1),
            min_size=1,
            max_size=graph.num_layers,
        )
    )
    return graph, sorted(layers)


@st.composite
def labelled_multilayer_graphs(draw, max_vertices=10, max_layers=4,
                               edge_probability=0.45):
    """A random graph over *string* vertex labels.

    Exercises the frozen backend's label-to-dense-id mapping on a
    vocabulary that is not already ``0..n-1`` (and, occasionally, not
    sorted the way ids are assigned).
    """
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    layers = draw(st.integers(min_value=1, max_value=max_layers))
    prefix = draw(st.sampled_from(["v", "node-", ""]))
    labels = ["{}{:03d}".format(prefix, i) for i in range(n)]
    graph = MultiLayerGraph(layers, vertices=labels)
    for layer in range(layers):
        for i in range(n):
            for j in range(i + 1, n):
                if draw(
                    st.floats(min_value=0.0, max_value=1.0)
                ) < edge_probability:
                    graph.add_edge(layer, labels[i], labels[j])
    return graph


@st.composite
def search_parameters(draw, graph, max_d=4, max_k=4):
    """A ``(d, s, k)`` triple valid for ``graph``."""
    d = draw(st.integers(min_value=0, max_value=max_d))
    s = draw(st.integers(min_value=1, max_value=graph.num_layers))
    k = draw(st.integers(min_value=1, max_value=max_k))
    return d, s, k
