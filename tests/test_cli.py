"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import paper_figure1_graph
from repro.graph.io import write_edge_list, write_json


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "ppi"])
        assert args.d == 4
        assert args.s == 3
        assert args.method == "auto"

    def test_figure_number(self):
        args = build_parser().parse_args(["figure", "14", "--scale", "0.2"])
        assert args.number == 14
        assert args.scale == 0.2


class TestCommands:
    def test_info_dataset(self, capsys):
        assert main(["info", "ppi", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out

    def test_info_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(paper_figure1_graph(), path)
        assert main(["info", str(path)]) == 0
        assert "layers: 4" in capsys.readouterr().out

    def test_search_json_file(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        write_json(paper_figure1_graph(), path)
        assert main(["search", str(path), "-d", "3", "-s", "2", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "cover 13 vertices" in out

    def test_search_method_choice(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        write_json(paper_figure1_graph(), path)
        assert main([
            "search", str(path), "-d", "3", "-s", "2", "-k", "2",
            "--method", "greedy",
        ]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_datasets_table(self, capsys):
        assert main(["datasets", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "Fig. 13" in out

    def test_figure_13(self, capsys):
        assert main(["figure", "13"]) == 0
        assert "parameter" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_figure_sweep_small(self, capsys):
        assert main(["figure", "16", "--scale", "0.12"]) == 0
        assert "cover" in capsys.readouterr().out
