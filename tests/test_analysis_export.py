"""Tests for graph analysis statistics and the DOT/GraphML exporters."""

import xml.etree.ElementTree as ET

import pytest

from repro.graph import (
    MultiLayerGraph,
    ascii_layer_summary,
    core_size_profile,
    layer_edge_jaccard,
    layer_similarity_matrix,
    layer_statistics,
    paper_figure1_graph,
    recommend_support,
    replicate_layer,
    support_histogram,
    to_dot,
    to_graphml,
    write_dot,
    write_graphml,
)
from repro.utils.errors import ParameterError


def demo_graph():
    g = MultiLayerGraph(2, vertices=range(5))
    for u, v in ((0, 1), (1, 2), (0, 2)):
        g.add_edge(0, u, v)
        g.add_edge(1, u, v)
    g.add_edge(0, 2, 3)
    return g


class TestAnalysis:
    def test_layer_statistics(self):
        rows = layer_statistics(demo_graph())
        assert rows[0]["edges"] == 4
        assert rows[1]["edges"] == 3
        assert rows[0]["two_core"] == 3
        assert 0.0 < rows[0]["density"] < 1.0

    def test_layer_statistics_empty_graph(self):
        rows = layer_statistics(MultiLayerGraph(1))
        assert rows[0]["edges"] == 0
        assert rows[0]["avg_degree"] == 0.0

    def test_edge_jaccard(self):
        g = demo_graph()
        # Layer 1's 3 edges are a subset of layer 0's 4.
        assert layer_edge_jaccard(g, 0, 1) == 3 / 4
        assert layer_edge_jaccard(g, 0, 0) == 1.0

    def test_similarity_matrix_symmetric(self):
        matrix = layer_similarity_matrix(demo_graph())
        assert matrix[0][1] == matrix[1][0] == 3 / 4
        assert matrix[0][0] == 1.0

    def test_identical_layers_similarity_one(self):
        g = replicate_layer([(0, 1), (1, 2)], 3)
        matrix = layer_similarity_matrix(g)
        assert all(value == 1.0 for row in matrix for value in row)

    def test_support_histogram(self):
        g = demo_graph()
        histogram = support_histogram(g, 2)
        # Triangle {0,1,2} in both layers' 2-cores; 3 and 4 in none.
        assert histogram[2] == 3
        assert histogram[0] == 2
        with pytest.raises(ParameterError):
            support_histogram(g, -1)

    def test_core_size_profile(self):
        profile = core_size_profile(demo_graph(), max_d=2)
        assert profile[0][2] == 3
        assert profile[1][0] == 5

    def test_recommend_support(self):
        g = demo_graph()
        # All 2-core vertices survive s = 2, so the strictest choice is 2.
        assert recommend_support(g, 2, coverage=1.0) == 2
        with pytest.raises(ParameterError):
            recommend_support(g, 2, coverage=0.0)

    def test_recommend_support_no_cores(self):
        g = MultiLayerGraph(3, vertices=range(4))
        assert recommend_support(g, 2) == 1


class TestDot:
    def test_contains_vertices_and_edges(self):
        text = to_dot(demo_graph())
        assert text.startswith("graph")
        assert '"0" -- "1"' in text or '"1" -- "0"' in text
        assert text.rstrip().endswith("}")

    def test_class_colouring(self):
        text = to_dot(
            demo_graph(),
            classes={"both": {0}, "only": {1}},
            class_colors={"both": "#ff0000"},
        )
        assert '"0" [fillcolor="#ff0000"];' in text

    def test_layer_subset(self):
        text = to_dot(demo_graph(), layers=[1])
        assert 'layer="1"' in text
        assert 'layer="0"' not in text

    def test_write_dot(self, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(demo_graph(), path)
        assert path.read_text().startswith("graph")

    def test_quotes_escaped(self):
        g = MultiLayerGraph(1)
        g.add_edge(0, 'a"b', "c")
        assert to_dot(g)  # must not raise


class TestGraphml:
    def test_well_formed_xml(self):
        text = to_graphml(demo_graph())
        root = ET.fromstring(text)
        ns = "{http://graphml.graphdrawing.org/xmlns}"
        nodes = root.findall(".//{}node".format(ns))
        edges = root.findall(".//{}edge".format(ns))
        assert len(nodes) == 5
        assert len(edges) == 7

    def test_layer_attribute(self):
        text = to_graphml(demo_graph())
        assert '<data key="layer">1</data>' in text

    def test_write_graphml(self, tmp_path):
        path = tmp_path / "g.graphml"
        write_graphml(paper_figure1_graph(), path)
        ET.parse(path)  # parses cleanly


class TestAscii:
    def test_bar_chart(self):
        text = ascii_layer_summary(demo_graph(), width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("4")

    def test_empty_graph(self):
        text = ascii_layer_summary(MultiLayerGraph(1), width=10)
        assert "0" in text
