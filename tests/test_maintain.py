"""Tests for the incremental multi-layer core maintainer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcore import d_core, layer_core
from repro.core.maintain import MultiLayerCoreMaintainer
from repro.core.stats import SearchStats
from repro.graph import MultiLayerGraph
from tests.strategies import multilayer_graphs


def ladder_graph():
    g = MultiLayerGraph(2, vertices=range(6))
    # Layer 0: 6-cycle; layer 1: two triangles.
    for i in range(6):
        g.add_edge(0, i, (i + 1) % 6)
    for tri in ((0, 1, 2), (3, 4, 5)):
        for i, u in enumerate(tri):
            for v in tri[i + 1:]:
                g.add_edge(1, u, v)
    return g


class TestMaintainer:
    def test_initial_state_matches_scratch(self):
        m = MultiLayerCoreMaintainer(ladder_graph(), 2)
        m.check_consistency()
        assert m.support[0] == 2

    def test_remove_cascades(self):
        g = ladder_graph()
        m = MultiLayerCoreMaintainer(g, 2)
        m.remove([0])
        # Layer 0's 2-core dies entirely (cycle broken); layer 1 keeps the
        # triangle {3,4,5} and loses {1,2}.
        assert m.cores[0] == set()
        assert m.cores[1] == {3, 4, 5}
        m.check_consistency()

    def test_remove_dead_vertex_is_noop(self):
        m = MultiLayerCoreMaintainer(ladder_graph(), 2)
        m.remove([0])
        before = [set(core) for core in m.cores]
        m.remove([0])
        assert [set(core) for core in m.cores] == before

    def test_within_restriction(self):
        g = ladder_graph()
        m = MultiLayerCoreMaintainer(g, 2, within={0, 1, 2, 3})
        assert m.cores[1] == {0, 1, 2}
        assert m.alive == {0, 1, 2, 3}

    def test_stats_counted(self):
        stats = SearchStats()
        MultiLayerCoreMaintainer(ladder_graph(), 2, stats=stats)
        assert stats.dcc_calls == 2

    def test_layers_containing(self):
        m = MultiLayerCoreMaintainer(ladder_graph(), 2)
        assert m.layers_containing(0) == frozenset({0, 1})
        m.remove([4])
        # Removing 4 breaks the layer-0 cycle (2-core empties) and peels
        # {3, 5} from the layer-1 triangle.
        assert m.layers_containing(3) == frozenset()
        assert m.layers_containing(1) == frozenset({1})

    @given(
        multilayer_graphs(max_vertices=9, max_layers=3),
        st.integers(min_value=0, max_value=4),
        st.lists(st.integers(min_value=0, max_value=8), max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_equivalent_to_recompute_after_any_deletions(self, graph, d, removals):
        m = MultiLayerCoreMaintainer(graph, d)
        vertices = sorted(graph.vertices())
        for index in removals:
            if not vertices:
                break
            victim = vertices[index % len(vertices)]
            m.remove([victim])
            if victim in vertices:
                vertices.remove(victim)
            for layer in graph.layers():
                assert m.cores[layer] == d_core(
                    graph.adjacency(layer), d, within=m.alive
                )
        m.check_consistency()

    @given(
        multilayer_graphs(max_vertices=9, max_layers=3),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_seeded_matches_unseeded(self, graph, d):
        """Seeding from precomputed layer cores changes nothing observable.

        The engine's selective artifact cache hands surviving per-layer
        cores back to the maintainer after a delta; the seeded maintainer
        must be indistinguishable from a cold one — same cores, alive set,
        support table, and (by contract) the same ``dcc_calls`` charge.
        """
        seeds = {
            layer: layer_core(graph, layer, d)
            for layer in graph.layers()
        }
        cold_stats, seeded_stats = SearchStats(), SearchStats()
        cold = MultiLayerCoreMaintainer(graph, d, stats=cold_stats)
        seeded = MultiLayerCoreMaintainer(
            graph, d, stats=seeded_stats, seed_cores=seeds
        )
        assert seeded.alive == cold.alive
        assert seeded.support == cold.support
        for layer in graph.layers():
            assert seeded.cores[layer] == cold.cores[layer]
        assert seeded_stats.dcc_calls == cold_stats.dcc_calls
        seeded.check_consistency()

    @given(
        multilayer_graphs(max_vertices=9, max_layers=3),
        st.integers(min_value=1, max_value=3),
        st.lists(st.integers(min_value=0, max_value=8), max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_removal_stream_consistent_each_step(self, graph, d, removals):
        """check_consistency() holds after *every* step of a removal stream."""
        m = MultiLayerCoreMaintainer(graph, d)
        vertices = sorted(graph.vertices())
        for index in removals:
            if not vertices:
                break
            victim = vertices[index % len(vertices)]
            m.remove([victim])
            vertices.remove(victim)
            assert victim not in m.alive
            m.check_consistency()

    @given(multilayer_graphs(max_vertices=9, max_layers=3))
    @settings(max_examples=40, deadline=None)
    def test_batch_removal_equals_sequential(self, graph):
        vertices = sorted(graph.vertices())
        batch = vertices[::2]
        together = MultiLayerCoreMaintainer(graph, 2)
        together.remove(batch)
        one_by_one = MultiLayerCoreMaintainer(graph, 2)
        for vertex in batch:
            one_by_one.remove([vertex])
        assert together.alive == one_by_one.alive
        for layer in graph.layers():
            assert together.cores[layer] == one_by_one.cores[layer]
