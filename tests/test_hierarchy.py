"""Tests for coherent-core decomposition (core numbers across layers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcc import coherent_core
from repro.core.hierarchy import (
    coherent_core_hierarchy,
    coherent_core_numbers,
    coherent_degeneracy,
    densest_coherent_core,
    suggest_degree_threshold,
)
from repro.graph import MultiLayerGraph, paper_figure1_graph, replicate_layer
from repro.utils.errors import ParameterError
from tests.strategies import graph_with_layer_subset


def nested_graph():
    # Layer-identical graph: K5 {0..4} plus a triangle {4,5,6} plus a
    # pendant 7 hanging off 6.
    edges = [
        (i, j) for i in range(5) for j in range(i + 1, 5)
    ] + [(4, 5), (5, 6), (4, 6), (6, 7)]
    return replicate_layer(edges, 2)


class TestCoreNumbers:
    def test_nested_example(self):
        numbers = coherent_core_numbers(nested_graph(), [0, 1])
        assert numbers[0] == numbers[1] == numbers[2] == numbers[3] == 4
        assert numbers[5] == 2
        assert numbers[7] == 1

    def test_single_layer_matches_core_decomposition(self):
        from repro.core.dcore import core_decomposition
        g = nested_graph()
        numbers = coherent_core_numbers(g, [0])
        assert numbers == core_decomposition(g.adjacency(0))

    def test_within_restriction(self):
        g = nested_graph()
        numbers = coherent_core_numbers(g, [0, 1], within={4, 5, 6})
        assert numbers == {4: 2, 5: 2, 6: 2}

    def test_empty_restriction(self):
        assert coherent_core_numbers(nested_graph(), [0], within=set()) == {}

    @given(graph_with_layer_subset(max_vertices=9, max_layers=3))
    @settings(max_examples=60, deadline=None)
    def test_numbers_agree_with_direct_dccs(self, graph_layers):
        """Core number of v == max d with v ∈ C^d_L — the definition."""
        graph, layers = graph_layers
        numbers = coherent_core_numbers(graph, layers)
        top = max(numbers.values(), default=0)
        for d in range(top + 2):
            expected = {v for v, number in numbers.items() if number >= d}
            assert coherent_core(graph, layers, d) == expected


class TestHierarchy:
    def test_chain_nests(self):
        chain = coherent_core_hierarchy(nested_graph(), [0, 1])
        for d in range(1, max(chain) + 1):
            assert chain[d] <= chain[d - 1]

    def test_chain_matches_direct(self):
        g = paper_figure1_graph()
        chain = coherent_core_hierarchy(g, [0, 2])
        for d, members in chain.items():
            assert members == coherent_core(g, [0, 2], d)

    def test_empty_graph(self):
        g = MultiLayerGraph(2, vertices=())
        assert coherent_core_hierarchy(g, [0]) == {0: frozenset()}

    def test_degeneracy(self):
        assert coherent_degeneracy(nested_graph(), [0, 1]) == 4
        g = paper_figure1_graph()
        assert coherent_degeneracy(g, [0]) >= 3

    def test_densest_core(self):
        d, members = densest_coherent_core(nested_graph(), [0, 1])
        assert d == 4
        assert members == frozenset(range(5))


class TestSuggestThreshold:
    def test_respects_min_size(self):
        g = nested_graph()
        assert suggest_degree_threshold(g, [0, 1], min_size=5) == 4
        assert suggest_degree_threshold(g, [0, 1], min_size=6) == 2

    def test_invalid_min_size(self):
        with pytest.raises(ParameterError):
            suggest_degree_threshold(nested_graph(), [0], min_size=0)

    def test_impossible_size_returns_zero_core(self):
        g = MultiLayerGraph(1, vertices=range(3))
        assert suggest_degree_threshold(g, [0], min_size=3) == 0
