"""Tests for GD-DCCS, the exact solver, and the approximation guarantees."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import (
    brute_force_all_subsets,
    exact_dccs,
    max_k_cover_exact,
)
from repro.core.dcc import is_coherent_dense
from repro.core.greedy import gd_dccs, greedy_max_k_cover
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.utils.errors import ParameterError
from tests.strategies import multilayer_graphs


class TestGreedyMaxKCover:
    def test_picks_largest_first(self):
        candidates = [("a", frozenset({1})), ("b", frozenset({1, 2, 3}))]
        chosen = greedy_max_k_cover(candidates, 1)
        assert chosen[0][0] == "b"

    def test_marginal_gain_drives_selection(self):
        candidates = [
            ("a", frozenset({1, 2, 3})),
            ("b", frozenset({1, 2, 4})),
            ("c", frozenset({5, 6})),
        ]
        chosen = greedy_max_k_cover(candidates, 2)
        assert [label for label, _ in chosen] == ["a", "c"]

    def test_stops_when_nothing_gains(self):
        candidates = [("a", frozenset({1})), ("b", frozenset({1}))]
        chosen = greedy_max_k_cover(candidates, 2)
        assert len(chosen) == 1

    def test_empty_candidates(self):
        assert greedy_max_k_cover([], 3) == []


class TestMaxKCoverExact:
    def test_simple_optimum(self):
        sets = [frozenset({1, 2}), frozenset({3, 4}), frozenset({1, 3})]
        picked = max_k_cover_exact(sets, 2)
        union = frozenset().union(*(sets[i] for i in picked))
        assert len(union) == 4

    def test_beats_greedy_trap(self):
        # The classic instance where pure greedy is suboptimal.
        sets = [
            frozenset({1, 2, 3, 4}),
            frozenset({1, 2, 5, 6}),
            frozenset({3, 4, 5, 6}),
        ]
        picked = max_k_cover_exact(sets, 2)
        union = frozenset().union(*(sets[i] for i in picked))
        assert len(union) == 6

    def test_k_exceeds_sets(self):
        sets = [frozenset({1})]
        assert max_k_cover_exact(sets, 5) == [0]

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=10), max_size=6),
            max_size=8,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_dominates_greedy(self, sets, k):
        exact_pick = max_k_cover_exact(sets, k)
        exact_cover = set()
        for index in exact_pick:
            exact_cover |= sets[index]
        greedy = greedy_max_k_cover(list(enumerate(sets)), k)
        greedy_cover = set()
        for _, members in greedy:
            greedy_cover |= members
        assert len(exact_cover) >= len(greedy_cover)


class TestGdDccs:
    def test_paper_example(self):
        graph = paper_figure1_graph()
        result = gd_dccs(graph, d=3, s=2, k=2)
        assert result.cover_size == 13
        assert result.algorithm == "greedy"
        for layers, members in zip(result.labels, result.sets):
            assert is_coherent_dense(graph, members, layers, 3)

    def test_parameter_validation(self):
        g = paper_figure1_graph()
        with pytest.raises(ParameterError):
            gd_dccs(g, -1, 2, 2)
        with pytest.raises(ParameterError):
            gd_dccs(g, 3, 0, 2)
        with pytest.raises(ParameterError):
            gd_dccs(g, 3, 9, 2)
        with pytest.raises(ParameterError):
            gd_dccs(g, 3, 2, 0)

    def test_no_dense_subgraph(self):
        g = MultiLayerGraph(2, vertices=range(4))
        g.add_edge(0, 0, 1)
        result = gd_dccs(g, d=2, s=1, k=3)
        assert result.sets == []
        assert result.cover_size == 0

    @given(multilayer_graphs(max_vertices=8, max_layers=3),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_results_are_valid_dccs(self, graph, d, k):
        for s in range(1, graph.num_layers + 1):
            result = gd_dccs(graph, d, s, k)
            assert len(result.sets) <= k
            for layers, members in zip(result.labels, result.sets):
                assert len(layers) == s
                assert is_coherent_dense(graph, members, layers, d)

    @given(multilayer_graphs(max_vertices=8, max_layers=3),
           st.integers(min_value=1, max_value=2),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_theorem2_approximation_ratio(self, graph, d, k):
        """Greedy cover >= (1 - 1/e) * optimal cover (Theorem 2)."""
        s = 1
        optimum = exact_dccs(graph, d, s, k, max_candidates=64)
        greedy = gd_dccs(graph, d, s, k)
        bound = (1.0 - 1.0 / math.e) * optimum.cover_size
        assert greedy.cover_size >= bound - 1e-9


class TestExactDccs:
    def test_matches_brute_force(self):
        g = paper_figure1_graph()
        exact = exact_dccs(g, 3, 2, 2)
        brute = brute_force_all_subsets(g, 3, 2, 2)
        brute_cover = set()
        for _, members in brute:
            brute_cover |= members
        assert exact.cover_size == len(brute_cover) == 13

    def test_candidate_limit(self):
        g = paper_figure1_graph()
        with pytest.raises(ParameterError):
            exact_dccs(g, 1, 2, 2, max_candidates=1)

    @given(multilayer_graphs(max_vertices=7, max_layers=3),
           st.integers(min_value=1, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_exact_at_least_greedy(self, graph, k):
        d, s = 1, 1
        exact = exact_dccs(graph, d, s, k, max_candidates=64)
        greedy = gd_dccs(graph, d, s, k)
        assert exact.cover_size >= greedy.cover_size
