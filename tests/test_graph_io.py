"""Tests for graph I/O, builders and views."""

import pytest

from repro.graph import (
    LayerView,
    MultiLayerGraph,
    from_adjacency,
    from_edge_lists,
    from_json_dict,
    from_networkx_layers,
    read_edge_list,
    read_json,
    replicate_layer,
    to_json_dict,
    write_edge_list,
    write_json,
)
from repro.utils.errors import ParameterError, VertexError


def sample_graph():
    g = MultiLayerGraph(2, vertices=["a", "b", "c", "lonely"])
    g.add_edge(0, "a", "b")
    g.add_edge(1, "b", "c")
    return g


class TestEdgeListRoundTrip:
    def test_round_trip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_layers == 2
        assert back.vertices() == {"a", "b", "c", "lonely"}
        assert back.has_edge(0, "a", "b")
        assert back.has_edge(1, "b", "c")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 a\n")
        with pytest.raises(ParameterError):
            read_edge_list(path)

    def test_empty_file_without_layers(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ParameterError):
            read_edge_list(path)
        assert read_edge_list(path, num_layers=3).num_layers == 3

    def test_layer_count_inferred(self, tmp_path):
        path = tmp_path / "no-header.txt"
        path.write_text("0 a b\n2 b c\n")
        assert read_edge_list(path).num_layers == 3


class TestJsonRoundTrip:
    def test_round_trip_dict(self):
        g = sample_graph()
        back = from_json_dict(to_json_dict(g))
        assert back.vertices() == g.vertices()
        assert back.has_edge(0, "a", "b")
        assert back.num_layers == g.num_layers

    def test_round_trip_file(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.json"
        write_json(g, path)
        back = read_json(path, name="renamed")
        assert back.name == "renamed"
        assert back.union_edge_count() == g.union_edge_count()


class TestBuilders:
    def test_from_edge_lists(self):
        g = from_edge_lists([[("a", "b")], [("b", "c")]], vertices=["z"])
        assert g.num_layers == 2
        assert "z" in g

    def test_from_edge_lists_empty(self):
        with pytest.raises(ParameterError):
            from_edge_lists([])

    def test_from_adjacency_symmetrises(self):
        g = from_adjacency([{"a": ["b"], "b": []}])
        assert g.has_edge(0, "b", "a")

    def test_from_networkx_like(self):
        class FakeGraph:
            nodes = ["a", "b", "c"]
            edges = [("a", "b"), ("c", "c")]

        g = from_networkx_layers([FakeGraph()])
        assert g.has_edge(0, "a", "b")
        assert not g.has_edge(0, "c", "c")

    def test_replicate_layer(self):
        g = replicate_layer([("a", "b")], 3)
        assert all(g.has_edge(layer, "a", "b") for layer in g.layers())
        with pytest.raises(ParameterError):
            replicate_layer([("a", "b")], 0)


class TestLayerView:
    def test_basic_view(self):
        view = LayerView(sample_graph(), 0)
        assert view.degree("a") == 1
        assert view.has_edge("a", "b")
        assert not view.has_edge("b", "c")

    def test_induced_view(self):
        g = sample_graph()
        view = LayerView(g, 0, within={"a", "c"})
        assert view.degree("a") == 0
        assert "b" not in view

    def test_view_outside_vertex(self):
        view = LayerView(sample_graph(), 0, within={"a"})
        with pytest.raises(VertexError):
            view.neighbors("b")

    def test_density_and_min_degree(self):
        g = replicate_layer(
            [(0, 1), (1, 2), (0, 2)], 1
        )
        view = LayerView(g, 0)
        assert view.density() == 1.0
        assert view.min_degree() == 2
        assert view.is_d_dense(2)
        assert not view.is_d_dense(3)

    def test_empty_view(self):
        view = LayerView(sample_graph(), 0, within=set())
        assert view.min_degree() == 0
        assert view.density() == 0.0
        assert view.num_edges() == 0
