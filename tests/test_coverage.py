"""Tests for the DiversifiedTopK structure (Update / Size / Delete / Insert)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import DiversifiedTopK
from repro.metrics.cover import exclusive_counts
from repro.utils.errors import ParameterError


class TestRules:
    def test_k_must_be_positive(self):
        with pytest.raises(ParameterError):
            DiversifiedTopK(0)

    def test_rule1_fills_up(self):
        top = DiversifiedTopK(2)
        assert top.try_update({1, 2})
        assert top.try_update({3})
        assert len(top) == 2
        assert top.cover_size == 3

    def test_empty_candidate_rejected(self):
        top = DiversifiedTopK(2)
        assert not top.try_update(set())
        assert len(top) == 0

    def test_duplicate_admitted_under_rule1(self):
        # Rule 1 admits duplicates (the paper's behaviour) so that the
        # pruning rules, which require |R| = k, arm as early as possible.
        top = DiversifiedTopK(3)
        assert top.try_update({1, 2})
        assert top.try_update({1, 2})
        assert len(top) == 2
        assert top.cover_size == 2
        # The duplicate has delta = 0, so it is the replacement victim.
        assert top.min_exclusive() == 0

    def test_rule2_replacement_accepts_big_gain(self):
        top = DiversifiedTopK(2)
        top.try_update({1})
        top.try_update({2})
        # cover = 2; threshold = (1 + 1/2) * 2 = 3.
        assert top.try_update({3, 4, 5})
        assert top.cover_size >= 3
        assert len(top) == 2

    def test_rule2_rejects_small_gain(self):
        top = DiversifiedTopK(2)
        top.try_update({1, 2, 3})
        top.try_update({4, 5, 6})
        # cover = 6; need >= 9 to replace; {7} only reaches 4.
        assert not top.try_update({7})
        assert top.cover_size == 6

    def test_rule2_replaces_weakest(self):
        top = DiversifiedTopK(2)
        top.try_update({1, 2, 3, 4})
        top.try_update({10})
        # weakest is {10} (delta 1); candidate pushes cover from 5 to >= 8.
        assert top.try_update({20, 21, 22, 23, 24})
        sets = top.sets()
        assert frozenset({10}) not in sets
        assert frozenset({1, 2, 3, 4}) in sets

    def test_labels_ride_along(self):
        top = DiversifiedTopK(1)
        top.try_update({1}, label=(0, 2))
        assert top.labelled_sets() == [((0, 2), frozenset({1}))]


class TestSizeOperation:
    def test_gain_size_empty(self):
        top = DiversifiedTopK(2)
        assert top.gain_size({1, 2}) == 2

    def test_gain_size_counts_three_parts(self):
        top = DiversifiedTopK(2)
        top.try_update({1, 2, 3})
        top.try_update({3, 4})
        # weakest is {3,4} (delta 1 via vertex 4).
        weakest_id, delta = top.weakest()
        assert delta == 1
        # Candidate {4, 9}: new vertex 9, vertex 4 exclusively weakest's,
        # plus Cov(R - weakest) = {1,2,3}.
        assert top.gain_size({4, 9}) == 2 + 3

    def test_min_exclusive_empty(self):
        assert DiversifiedTopK(3).min_exclusive() == 0

    def test_weakest_requires_nonempty(self):
        with pytest.raises(ParameterError):
            DiversifiedTopK(1).weakest()

    def test_satisfies_replacement_integer_form(self):
        top = DiversifiedTopK(3)
        top.try_update({1, 2})
        top.try_update({3, 4})
        top.try_update({5, 6})
        # cover=6, k=3 -> threshold 8 exactly; integer compare is >=.
        assert top.satisfies_replacement(8)
        assert not top.satisfies_replacement(7)


@st.composite
def update_sequences(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    count = draw(st.integers(min_value=0, max_value=12))
    sets = [
        draw(
            st.frozensets(
                st.integers(min_value=0, max_value=15), min_size=0, max_size=8
            )
        )
        for _ in range(count)
    ]
    return k, sets


class TestInvariants:
    @given(update_sequences())
    @settings(max_examples=150, deadline=None)
    def test_indexes_stay_consistent(self, payload):
        k, sets = payload
        top = DiversifiedTopK(k)
        for candidate in sets:
            top.try_update(candidate)
            top.check_consistency()
            assert len(top) <= k

    @given(update_sequences())
    @settings(max_examples=100, deadline=None)
    def test_cover_never_shrinks_when_full(self, payload):
        k, sets = payload
        top = DiversifiedTopK(k)
        previous_cover = 0
        for candidate in sets:
            was_full = top.is_full
            top.try_update(candidate)
            if was_full:
                assert top.cover_size >= previous_cover
            previous_cover = top.cover_size

    @given(update_sequences())
    @settings(max_examples=100, deadline=None)
    def test_exclusive_counts_match_offline(self, payload):
        k, sets = payload
        top = DiversifiedTopK(k)
        for candidate in sets:
            top.try_update(candidate)
        held = top.sets()
        offline = exclusive_counts(held)
        # Both orderings enumerate the same multiset of deltas.
        online = sorted(
            top.exclusive_count(set_id) for set_id in top._members
        )
        assert online == sorted(offline)

    @given(update_sequences())
    @settings(max_examples=100, deadline=None)
    def test_replacement_growth_factor(self, payload):
        """Each Rule 2 replacement grows the cover by >= (1 + 1/k)."""
        k, sets = payload
        top = DiversifiedTopK(k)
        for candidate in sets:
            if top.is_full:
                before = top.cover_size
                accepted = top.try_update(candidate)
                if accepted and before:
                    assert top.cover_size * k >= (k + 1) * before
            else:
                top.try_update(candidate)
