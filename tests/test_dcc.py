"""Tests for d-coherent cores: definition, paper properties, Lemma 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcc import (
    coherent_core,
    coherent_core_binsort,
    enumerate_candidates,
    is_coherent_dense,
    per_layer_cores,
)
from repro.core.dcore import d_core
from repro.core.stats import SearchStats
from repro.graph import MultiLayerGraph, paper_figure1_graph, replicate_layer
from repro.utils.errors import LayerIndexError, ParameterError
from tests.strategies import graph_with_layer_subset, multilayer_graphs


def two_layer_example():
    g = MultiLayerGraph(2, vertices=range(6))
    # Layer 0: K4 on {0,1,2,3}; layer 1: K4 on {1,2,3,4}; vertex 5 isolated.
    for block, layer in (((0, 1, 2, 3), 0), ((1, 2, 3, 4), 1)):
        for i, u in enumerate(block):
            for v in block[i + 1:]:
                g.add_edge(layer, u, v)
    return g


class TestCoherentCoreBasics:
    def test_single_layer_equals_d_core(self):
        g = two_layer_example()
        assert coherent_core(g, [0], 3) == frozenset({0, 1, 2, 3})
        assert coherent_core(g, [1], 3) == frozenset({1, 2, 3, 4})

    def test_two_layers_intersection_shrinks(self):
        g = two_layer_example()
        # {1,2,3} has degree 2 on both layers once 0 and 4 drop out.
        assert coherent_core(g, [0, 1], 2) == frozenset({1, 2, 3})
        assert coherent_core(g, [0, 1], 3) == frozenset()

    def test_d_zero_returns_everything(self):
        g = two_layer_example()
        assert coherent_core(g, [0, 1], 0) == frozenset(range(6))

    def test_within_restriction(self):
        g = two_layer_example()
        assert coherent_core(g, [0], 2, within={0, 1, 2}) == frozenset({0, 1, 2})

    def test_empty_layer_subset_rejected(self):
        with pytest.raises(ParameterError):
            coherent_core(two_layer_example(), [], 1)

    def test_bad_layer_rejected(self):
        with pytest.raises(LayerIndexError):
            coherent_core(two_layer_example(), [5], 1)

    def test_negative_d_rejected(self):
        with pytest.raises(ParameterError):
            coherent_core(two_layer_example(), [0], -2)

    def test_duplicate_layers_collapse(self):
        g = two_layer_example()
        assert coherent_core(g, [0, 0], 3) == coherent_core(g, [0], 3)

    def test_stats_counted(self):
        stats = SearchStats()
        coherent_core(two_layer_example(), [0, 1], 3, stats=stats)
        assert stats.dcc_calls == 1
        assert stats.peel_operations > 0

    def test_replicated_layers_equal_base_core(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        g = replicate_layer(edges, 4)
        base = d_core(g.adjacency(0), 2)
        for layers in ([0], [1, 2], [0, 1, 2, 3]):
            assert coherent_core(g, layers, 2) == frozenset(base)

    def test_paper_example_cores(self):
        g = paper_figure1_graph()
        c13 = coherent_core(g, [0, 2], 3)
        c24 = coherent_core(g, [1, 3], 3)
        assert c13 == frozenset("abcdefghi") | {"y", "m"}
        assert c24 == frozenset("abcdefghi") | {"m", "n", "k"}
        # The sparse appendage {g,h,i,j} is never 3-dense.
        assert "j" not in coherent_core(g, [0], 3)


class TestPaperProperties:
    @given(graph_with_layer_subset(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_definition_and_maximality(self, graph_layers, d):
        graph, layers = graph_layers
        core = coherent_core(graph, layers, d)
        assert is_coherent_dense(graph, core, layers, d)
        # Uniqueness/maximality (Property 1): no strict superset that is
        # closed under peeling exists.
        for vertex in graph.vertices() - core:
            bigger = coherent_core(graph, layers, d, within=core | {vertex})
            assert bigger == core

    @given(graph_with_layer_subset(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_hierarchy_property(self, graph_layers, d):
        graph, layers = graph_layers
        smaller = coherent_core(graph, layers, d)
        larger = coherent_core(graph, layers, d - 1)
        assert smaller <= larger

    @given(multilayer_graphs(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_containment_property(self, graph, d):
        layers = list(range(graph.num_layers))
        full = coherent_core(graph, layers, d)
        for layer in layers:
            assert full <= coherent_core(graph, [layer], d)

    @given(multilayer_graphs(max_layers=4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_intersection_bound_lemma1(self, graph, d):
        if graph.num_layers < 2:
            return
        half = graph.num_layers // 2
        first = list(range(half))
        second = list(range(half, graph.num_layers))
        combined = coherent_core(graph, first + second, d)
        assert combined <= (
            coherent_core(graph, first, d) & coherent_core(graph, second, d)
        )

    @given(graph_with_layer_subset(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_binsort_equals_cascade(self, graph_layers, d):
        graph, layers = graph_layers
        assert coherent_core_binsort(graph, layers, d) == coherent_core(
            graph, layers, d
        )


class TestHelpers:
    def test_is_coherent_dense_rejects_outside_vertices(self):
        g = two_layer_example()
        assert not is_coherent_dense(g, {0, 99}, [0], 0)

    def test_is_coherent_dense_empty_set(self):
        g = two_layer_example()
        assert is_coherent_dense(g, set(), [0], 5)

    def test_per_layer_cores(self):
        g = two_layer_example()
        cores = per_layer_cores(g, 3)
        assert cores[0] == {0, 1, 2, 3}
        assert cores[1] == {1, 2, 3, 4}

    def test_enumerate_candidates_counts(self):
        g = two_layer_example()
        candidates = dict(enumerate_candidates(g, 2, 1))
        assert set(candidates) == {(0,), (1,)}
        pairs = dict(enumerate_candidates(g, 2, 2))
        assert set(pairs) == {(0, 1)}
        assert pairs[(0, 1)] == frozenset({1, 2, 3})

    def test_enumerate_candidates_bad_s(self):
        g = two_layer_example()
        with pytest.raises(ParameterError):
            list(enumerate_candidates(g, 2, 3))

    @given(multilayer_graphs(max_vertices=8, max_layers=3),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_matches_direct_computation(self, graph, d):
        for s in range(1, graph.num_layers + 1):
            for layers, members in enumerate_candidates(graph, d, s):
                assert members == coherent_core(graph, layers, d)
