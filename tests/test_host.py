"""Suite for :mod:`repro.host` — the multi-graph engine host.

The contract under test, in order of importance:

1. **hosted equivalence** — ``host.search`` / ``host.search_many`` are
   bitwise identical (sets, labels, cover, aggregated counters) to a
   fresh single-graph :class:`DCCEngine` and to one-shot
   ``search_dccs``, including across evictions and re-admission;
2. **admission control** — at most ``max_engines`` sessions are
   resident, LRU order decides the victim, eviction closes the victim's
   worker pool (no leaked processes), and a global memory budget evicts
   down to (but never including) the session being served;
3. **lifecycle** — registry operations validate their inputs, closed
   hosts refuse work, and the batch-spec parser rejects malformed
   documents before any graph is loaded.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import search_dccs
from repro.engine import DCCEngine
from repro.host import DCCHost, parse_host_spec
from repro.parallel import live_pool_count
from repro.utils.errors import (
    EngineClosedError,
    HostClosedError,
    ParameterError,
    UnknownGraphError,
)
from repro.graph import MultiLayerGraph, paper_figure1_graph
from tests.strategies import multilayer_graphs, search_parameters


def ring_graph(n=12, layers=2):
    graph = MultiLayerGraph(layers, vertices=range(n))
    for layer in range(layers):
        for i in range(n):
            graph.add_edge(layer, i, (i + 1) % n)
    return graph


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


# ----------------------------------------------------------------------
# 1. hosted equivalence
# ----------------------------------------------------------------------


class TestHostedEquivalence:
    def test_host_matches_fresh_engine_and_one_shot(self):
        graph = paper_figure1_graph()
        with DCCHost(jobs=1) as host:
            host.attach("fig1", graph)
            hosted = host.search("fig1", 3, 2, 2, method="greedy")
        with DCCEngine(graph, jobs=1) as engine:
            session = engine.search(3, 2, 2, method="greedy")
        one_shot = search_dccs(graph, 3, 2, 2, method="greedy", jobs=1)
        assert_identical(hosted, session)
        assert_identical(hosted, one_shot)

    def test_search_many_spans_graphs_in_input_order(self):
        first, second = paper_figure1_graph(), ring_graph()
        specs = [
            {"graph": "fig1", "d": 3, "s": 2, "k": 2},
            {"graph": "ring", "d": 2, "s": 1, "k": 2},
            {"graph": "fig1", "d": 2, "s": 2, "k": 2, "method": "greedy"},
            {"graph": "ring", "d": 2, "s": 2, "k": 1},
        ]
        with DCCHost(jobs=1) as host:
            host.attach("fig1", first).attach("ring", second)
            batched = host.search_many(specs)
            singles = [
                host.search(spec["graph"],
                            **{key: value for key, value in spec.items()
                               if key != "graph"})
                for spec in specs
            ]
        assert len(batched) == len(specs)
        for spec, one, two in zip(specs, batched, singles):
            assert_identical(one, two, spec)

    @given(st.data())
    @settings(max_examples=3, deadline=None)
    def test_readmission_bitwise_identical_under_pressure(self, data):
        # The acceptance-criterion property: a host thrashing two graphs
        # through one engine slot returns, for every query, exactly what
        # a fresh dedicated engine returns — eviction and re-admission
        # cost latency, never results or counters.
        graph_a = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        graph_b = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph_a))
        db, sb, kb = data.draw(search_parameters(graph_b))
        with DCCHost(max_engines=1, jobs=1) as host:
            host.attach("a", graph_a).attach("b", graph_b)
            rounds = [
                (name, host.search(name, *params, seed=5))
                for name, params in (("a", (d, s, k)), ("b", (db, sb, kb)),
                                     ("a", (d, s, k)), ("b", (db, sb, kb)))
            ]
            assert host.evictions >= 2
        for name, result in rounds:
            graph, params = ((graph_a, (d, s, k)) if name == "a"
                             else (graph_b, (db, sb, kb)))
            with DCCEngine(graph, jobs=1) as engine:
                fresh = engine.search(*params, seed=5)
            assert_identical(result, fresh, (name, params))


# ----------------------------------------------------------------------
# 2. admission control
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_lru_eviction_closes_the_victim_pool(self):
        with DCCHost(max_engines=2, jobs=2) as host:
            host.attach("a", paper_figure1_graph())
            host.attach("b", ring_graph())
            host.attach("c", ring_graph(8))
            engine_a = host.engine("a")
            engine_a.warm()
            assert engine_a.info()["pool_spawned"] is True
            host.engine("b")
            # "a" is LRU; admitting "c" must evict it and close its pool.
            host.engine("c")
            assert host.resident() == ("b", "c")
            assert host.evictions == 1
            assert engine_a.info()["closed"] is True
            assert engine_a.info()["pool_spawned"] is False
            with pytest.raises(EngineClosedError):
                engine_a.search(1, 1, 1)

    def test_no_leaked_worker_processes_after_churn(self):
        baseline = live_pool_count()
        with DCCHost(max_engines=1, jobs=2) as host:
            host.attach("a", paper_figure1_graph())
            host.attach("b", ring_graph())
            for name in ("a", "b", "a", "b"):
                engine = host.engine(name)
                engine.warm()
            assert live_pool_count() <= baseline + 1
        assert live_pool_count() == baseline

    def test_touch_refreshes_lru_order(self):
        with DCCHost(max_engines=2, jobs=1) as host:
            host.attach("a", paper_figure1_graph())
            host.attach("b", ring_graph())
            host.attach("c", ring_graph(8))
            host.engine("a")
            host.engine("b")
            host.engine("a")  # touch: "b" is now LRU
            host.engine("c")
            assert host.resident() == ("a", "c")

    def test_memory_budget_evicts_down_to_the_served_session(self):
        first, second = paper_figure1_graph(), ring_graph(30)
        with DCCHost(jobs=1) as host:
            host.attach("a", first).attach("b", second)
            one = host.engine("a").memory_bytes()
            host._evict("a")
            host.evictions = 0
            # A budget below two resident graphs but above one: serving
            # both alternately keeps exactly one session resident.
            host.memory_budget_bytes = one + 1
            host.search("a", 2, 1, 1)
            host.search("b", 2, 1, 1)
            assert host.resident() == ("b",)
            assert host.evictions == 1

    def test_oversized_single_graph_still_serves(self):
        with DCCHost(memory_budget_bytes=1, jobs=1) as host:
            host.attach("a", paper_figure1_graph())
            result = host.search("a", 3, 2, 2)
            assert result.sets
            assert host.resident() == ("a",)

    def test_engine_cache_is_bounded_under_a_host(self):
        with DCCHost(jobs=1, cache_max_entries=2) as host:
            host.attach("a", paper_figure1_graph())
            for d in (1, 2, 3):
                host.search("a", d, 2, 2, method="bottom-up")
            status = host.engine("a").info()
            assert status["cache_entries"] <= 2
            assert status["cache_evictions"] > 0
        with DCCEngine(paper_figure1_graph(), jobs=1) as engine:
            assert engine._cache.max_entries is None  # standalone: unbounded


# ----------------------------------------------------------------------
# 3. lifecycle and validation
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_registry_validation(self):
        graph = paper_figure1_graph()
        with DCCHost() as host:
            host.attach("a", graph)
            with pytest.raises(ParameterError):
                host.attach("a", graph)  # duplicate name
            with pytest.raises(ParameterError):
                host.attach("", graph)
            with pytest.raises(UnknownGraphError):
                host.engine("missing")
            with pytest.raises(UnknownGraphError):
                host.detach("missing")
            with pytest.raises(UnknownGraphError):
                host.graph("missing")
            assert host.names() == ("a",)
            assert host.graph("a") is graph

    def test_detach_closes_and_allows_reattach(self):
        with DCCHost(jobs=1) as host:
            host.attach("a", paper_figure1_graph())
            engine = host.engine("a")
            host.detach("a")
            assert engine.info()["closed"] is True
            assert not host.is_attached("a")
            host.attach("a", ring_graph())
            assert host.search("a", 2, 1, 1).sets

    def test_closed_host_refuses_work(self):
        host = DCCHost(jobs=1)
        host.attach("a", paper_figure1_graph())
        engine = host.engine("a")
        host.close()
        assert engine.info()["closed"] is True
        for call in (
            lambda: host.attach("b", ring_graph()),
            lambda: host.engine("a"),
            lambda: host.search("a", 1, 1, 1),
            lambda: host.search_many([]),
            lambda: host.detach("a"),
        ):
            with pytest.raises(HostClosedError):
                call()
        host.close()  # idempotent

    def test_constructor_validation(self):
        for bad in (0, -1, True, "2"):
            with pytest.raises(ParameterError):
                DCCHost(max_engines=bad)
        for bad in (0, -5, "64000000", True):
            with pytest.raises(ParameterError):
                DCCHost(memory_budget_bytes=bad)
        with pytest.raises(ParameterError):
            DCCHost(backend="froze")
        with pytest.raises(ParameterError):
            DCCHost(jobs=-1)

    def test_attach_validates_overrides_eagerly(self):
        # A poison registration must fail at attach time — discovering
        # it at admission would evict the LRU victim's warm pool first.
        with DCCHost(jobs=1) as host:
            graph = paper_figure1_graph()
            with pytest.raises(ParameterError):
                host.attach("bad", graph, backend="froze")
            with pytest.raises(ParameterError):
                host.attach("bad", graph, jobs=-2)
            assert not host.is_attached("bad")

    def test_search_many_validates_names_before_serving(self):
        with DCCHost(jobs=1) as host:
            host.attach("a", paper_figure1_graph())
            with pytest.raises(UnknownGraphError):
                host.search_many([
                    {"graph": "a", "d": 3, "s": 2, "k": 2},
                    {"graph": "nope", "d": 3, "s": 2, "k": 2},
                ])
            with pytest.raises(ParameterError):
                host.search_many([{"d": 3, "s": 2, "k": 2}])
            assert host.searches_served == 0

    def test_info_reports_admission_picture(self):
        with DCCHost(max_engines=1, jobs=1) as host:
            host.attach("a", paper_figure1_graph())
            host.attach("b", ring_graph())
            host.search("a", 3, 2, 2)
            host.search("b", 2, 1, 1)
            status = host.info()
        assert status["attached"] == 2
        assert status["resident_engines"] == ("b",)
        assert status["admissions"] == 2
        assert status["evictions"] >= 1
        assert status["searches_served"] == 2
        assert status["memory_bytes"] >= 0
        assert set(status["engines"]) == {"b"}


# ----------------------------------------------------------------------
# 4. batch-spec parsing and CLI
# ----------------------------------------------------------------------


class TestHostSpec:
    def test_parses_a_well_formed_spec(self):
        graphs, queries, settings = parse_host_spec({
            "graphs": {"a": "figure1", "b": "english"},
            "max_engines": 1,
            "queries": [
                {"graph": "a", "d": 3, "s": 2, "k": 2},
                {"graph": "b", "d": 2, "s": 2, "k": 3, "method": "greedy"},
            ],
        })
        assert list(graphs) == ["a", "b"]
        assert graphs["b"] == "english"
        assert len(queries) == 2 and queries[0]["graph"] == "a"
        assert settings == {"max_engines": 1}

    def test_settings_include_shards(self):
        _, _, settings = parse_host_spec({
            "graphs": {"a": "figure1"},
            "shards": 2,
            "queries": [{"graph": "a", "d": 3, "s": 2, "k": 2}],
        })
        assert settings == {"shards": 2}

    def test_unknown_top_level_key_is_named_in_the_error(self):
        # A typo'd settings knob must fail loudly, naming both the bad
        # key and the accepted vocabulary — never silently configure
        # nothing.
        from repro.host.spec import SETTINGS_KEYS

        with pytest.raises(ParameterError) as rejected:
            parse_host_spec({
                "graphs": {"a": "figure1"},
                "kernal": "numpy",
                "queries": [{"graph": "a", "d": 1, "s": 1, "k": 1}],
            })
        message = str(rejected.value)
        assert "kernal" in message
        for key in SETTINGS_KEYS + ("graphs", "queries"):
            assert key in message

    @pytest.mark.parametrize("payload", [
        [],                                          # not an object
        {"graphs": {"a": "figure1"}, "sharde": 2,
         "queries": [{"graph": "a", "d": 1, "s": 1, "k": 1}]},  # bad key
        {"queries": [{"graph": "a", "d": 1, "s": 1, "k": 1}]},  # no graphs
        {"graphs": {}, "queries": [{}]},             # empty graphs
        {"graphs": {"a": "figure1"}, "queries": []},  # empty queries
        {"graphs": {"a": "figure1"}, "queries": [7]},  # non-object query
        {"graphs": {"a": "figure1"},
         "queries": [{"d": 1, "s": 1, "k": 1}]},     # missing graph key
        {"graphs": {"a": "figure1"},
         "queries": [{"graph": "b", "d": 1, "s": 1, "k": 1}]},  # undeclared
        {"graphs": {"a": "figure1"},
         "queries": [{"graph": "a", "d": 1, "s": 1}]},  # missing k
        {"graphs": {"a": 7},
         "queries": [{"graph": "a", "d": 1, "s": 1, "k": 1}]},  # bad source
    ])
    def test_rejects_malformed_specs(self, payload):
        with pytest.raises(ParameterError):
            parse_host_spec(payload)

    def test_cli_host_runs_a_spec(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"graphs": {"one": "figure1", "two": "figure1"},'
            ' "max_engines": 1,'
            ' "queries": ['
            '  {"graph": "one", "d": 3, "s": 2, "k": 2},'
            '  {"graph": "two", "d": 2, "s": 2, "k": 2, "method": "greedy"},'
            '  {"graph": "one", "d": 3, "s": 2, "k": 2}]}'
        )
        assert main(["host", str(spec), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "host: 3 queries over 2 graphs" in out
        assert "1 evicted" in out
        assert "cover 13 vertices" in out

    def test_cli_host_flag_overrides_spec(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"graphs": {"one": "figure1", "two": "figure1"},'
            ' "max_engines": 1,'
            ' "queries": ['
            '  {"graph": "one", "d": 3, "s": 2, "k": 2},'
            '  {"graph": "two", "d": 3, "s": 2, "k": 2}]}'
        )
        assert main(["host", str(spec), "--jobs", "1",
                     "--max-engines", "2"]) == 0
        assert "0 evicted" in capsys.readouterr().out

    def test_cli_host_rejects_bad_spec(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text('{"graphs": {"a": "figure1"}, "queries": []}')
        assert main(["host", str(spec)]) == 2
        assert capsys.readouterr().err != ""

    def test_cli_info_reports_host_status(self, capsys):
        assert main(["info", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "host_max_engines" in out
        assert "host_resident_engines: 1" in out


# ----------------------------------------------------------------------
# 5. sweep integration
# ----------------------------------------------------------------------


class TestSweepIntegration:
    def test_sweep_reuses_one_host_across_dataset_rows(self):
        from repro.experiments.runner import sweep

        first, second = paper_figure1_graph(), ring_graph(16)
        base = {"d": 2, "s": 2, "k": 2}
        with DCCHost(jobs=1) as host:
            rows_a = sweep(first, "k", (1, 2), base, ("greedy",),
                           host=host, graph_name="fig1")
            rows_b = sweep(second, "k", (1, 2), base, ("greedy",),
                           host=host, graph_name="ring")
            assert host.resident() == ("fig1", "ring")
            assert host.admissions == 2
        plain_a = sweep(first, "k", (1, 2), base, ("greedy",))
        plain_b = sweep(second, "k", (1, 2), base, ("greedy",))
        for hosted, plain in zip(rows_a + rows_b, plain_a + plain_b):
            assert hosted["cover"] == plain["cover"]
            assert hosted["dcc_calls"] == plain["dcc_calls"]

    def test_sweep_disambiguates_name_collisions(self):
        # The vary_* wrappers reuse the dataset name: the same dataset
        # loaded at a different scale is a different graph object, and
        # the sweep must derive a fresh registration rather than abort
        # or silently serve the wrong graph.
        from repro.experiments.runner import sweep

        base = {"d": 2, "s": 1, "k": 1}
        small, large = ring_graph(8), ring_graph(20)
        with DCCHost(jobs=1) as host:
            rows_small = sweep(small, "k", (1,), base, ("greedy",),
                               host=host, graph_name="shared")
            rows_large = sweep(large, "k", (1,), base, ("greedy",),
                               host=host, graph_name="shared")
            assert len(host.names()) == 2
            assert host.graph("shared") is small
        assert rows_small[0]["cover"] == 8
        assert rows_large[0]["cover"] == 20

    def test_vary_functions_accept_a_host(self):
        from repro.experiments.sweeps import vary_small_s

        with DCCHost(jobs=1) as host:
            hosted = vary_small_s("ppi", s_values=(1, 2), scale=0.2,
                                  host=host)
            assert host.is_attached("ppi")
            assert host.resident() == ("ppi",)
        plain = vary_small_s("ppi", s_values=(1, 2), scale=0.2)
        for one, two in zip(hosted, plain):
            assert one["cover"] == two["cover"]
            assert one["dcc_calls"] == two["dcc_calls"]
