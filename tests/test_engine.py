"""Determinism, caching and lifecycle suite for :mod:`repro.engine`.

The contract under test, in order of importance:

1. **session equivalence** — ``engine.search``, ``engine.search_many``
   and one-shot ``search_dccs(..., jobs=N)`` return bitwise identical
   sets, labels, cover sizes *and aggregated stats counters*, for every
   method, both backends, and warm-vs-cold pools/caches (the artifact
   cache replays captured stats deltas instead of skipping charges);
2. **invalidation** — mutating the underlying ``MultiLayerGraph`` after
   engine construction rebinds the session (frozen graph, cache, pool);
   a stale result is never returned;
3. **scratch safety** — the frozen peel kernels return identical results
   with and without an active :class:`ScratchArena`, including across
   graphs of different sizes sharing one arena.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import search_dccs
from repro.engine import ArtifactCache, DCCEngine
from repro.experiments.runner import measure_point, sweep
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.graph.frozen import (
    ScratchArena,
    active_scratch,
    frozen_coherent_core,
    frozen_layer_core,
)
from repro.utils.errors import EngineClosedError, ParameterError
from tests.strategies import multilayer_graphs, search_parameters

METHODS = ("greedy", "bottom-up", "top-down")


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


# ----------------------------------------------------------------------
# 1. session equivalence with one-shot search_dccs
# ----------------------------------------------------------------------


class TestSessionEquivalence:
    @given(st.data())
    @settings(max_examples=3, deadline=None)
    def test_engine_matches_one_shot_all_methods_both_backends(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        for backend in ("dict", "frozen"):
            with DCCEngine(graph, backend=backend, jobs=2) as engine:
                for method in METHODS:
                    one_shot = search_dccs(graph, d, s, k, method=method,
                                           backend=backend, jobs=2, seed=5)
                    cold = engine.search(d, s, k, method=method, seed=5)
                    warm = engine.search(d, s, k, method=method, seed=5)
                    batch, = engine.search_many([
                        {"d": d, "s": s, "k": k, "method": method,
                         "seed": 5},
                    ])
                    for label, result in (("cold", cold), ("warm", warm),
                                          ("batch", batch)):
                        assert_identical(
                            one_shot, result,
                            (backend, method, label, d, s, k),
                        )

    def test_search_many_matches_individual_searches_in_order(self):
        graph = paper_figure1_graph()
        specs = [
            {"d": 3, "s": 2, "k": 2},
            {"d": 2, "s": 3, "k": 3, "method": "bottom-up"},
            {"d": 2, "s": 2, "k": 2, "method": "top-down", "seed": 7},
            {"d": 3, "s": 2, "k": 2},  # repeat: warm cache, same answer
        ]
        with DCCEngine(graph, jobs=2) as engine:
            batched = engine.search_many(specs)
            singles = [engine.search(**spec) for spec in specs]
        assert len(batched) == len(specs)
        for spec, one, two in zip(specs, batched, singles):
            assert_identical(one, two, spec)

    def test_search_many_empty_batch(self):
        with DCCEngine(paper_figure1_graph(), jobs=1) as engine:
            assert engine.search_many([]) == []

    def test_prefrozen_graph_keeps_id_vocabulary(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        with DCCEngine(frozen, jobs=1) as engine:
            raw = engine.search(3, 2, 2, method="greedy")
        translated = search_dccs(graph, 3, 2, 2, method="greedy",
                                 backend="frozen", jobs=1)
        assert [
            frozen.labels_for(members) for members in raw.sets
        ] == translated.sets

    def test_stats_option_accumulates_like_one_shot(self):
        from repro.core.stats import SearchStats

        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=1) as engine:
            mine = SearchStats()
            result = engine.search(3, 2, 2, method="greedy", stats=mine)
            assert result.stats is mine
            again = engine.search(3, 2, 2, method="greedy")
        assert mine.as_dict() == again.stats.as_dict()

    def test_non_topdown_methods_ignore_seed(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=1) as engine:
            seeded = engine.search(3, 2, 2, method="greedy", seed=99)
            plain = engine.search(3, 2, 2, method="greedy")
        assert_identical(seeded, plain)

    def test_rejects_unknown_method_and_option(self):
        with DCCEngine(paper_figure1_graph(), jobs=1) as engine:
            with pytest.raises(ParameterError):
                engine.search(1, 1, 1, method="sideways")
            with pytest.raises(ParameterError):
                engine.search(1, 1, 1, method="greedy", use_warp_drive=True)

    def test_search_many_validates_before_submitting(self):
        # One bad spec must fail the batch up front — before any query
        # is planned or submitted — not mid-pipeline with completed
        # work in flight.
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=1) as engine:
            with pytest.raises(ParameterError):
                engine.search_many([
                    {"d": 3, "s": 2, "k": 2},
                    {"d": 3, "s": 99, "k": 2},
                ])
            assert engine.info()["pool_queries_served"] == 0
            with pytest.raises(ParameterError):
                engine.search_many([{"d": 3, "k": 2}])


# ----------------------------------------------------------------------
# 2. artifact cache behaviour
# ----------------------------------------------------------------------


class TestArtifactCache:
    def test_cache_hits_accumulate_across_queries(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=1) as engine:
            engine.search(3, 2, 2, method="bottom-up")
            first = engine.info()
            engine.search(3, 2, 2, method="bottom-up")
            second = engine.info()
        assert first["cache_misses"] > 0
        assert second["cache_hits"] > first["cache_hits"]
        assert second["cache_misses"] == first["cache_misses"]

    def test_cache_disabled_engine_still_identical(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=1, cache_artifacts=False) as engine:
            uncached = engine.search(3, 2, 2, method="top-down", seed=5)
            assert engine.info()["cache_enabled"] is False
        with DCCEngine(graph, jobs=1) as engine:
            cached = engine.search(3, 2, 2, method="top-down", seed=5)
        assert_identical(uncached, cached)

    def test_stats_delta_replay(self):
        # The unit-level version of warm == cold: a second lookup hands
        # back the same preprocess artifact plus the same counters.
        graph = paper_figure1_graph().freeze()
        cache = ArtifactCache(graph)
        prep_a, delta_a = cache.preprocess(3, 2, True)
        prep_b, delta_b = cache.preprocess(3, 2, True)
        assert prep_a is prep_b
        assert delta_a is delta_b
        assert cache.hits == 1 and cache.misses == 1

    def test_cache_keys_distinguish_parameters(self):
        graph = paper_figure1_graph().freeze()
        cache = ArtifactCache(graph)
        cache.preprocess(3, 2, True)
        cache.preprocess(2, 2, True)
        cache.preprocess(3, 2, False)
        assert cache.misses == 3 and cache.hits == 0

    def test_unbounded_by_default(self):
        cache = ArtifactCache(paper_figure1_graph().freeze())
        assert cache.max_entries is None and cache.ttl is None

    def test_size_cap_discards_lru(self):
        graph = paper_figure1_graph().freeze()
        cache = ArtifactCache(graph, max_entries=2)
        cache.preprocess(3, 2, True)
        cache.preprocess(2, 2, True)
        cache.preprocess(3, 2, True)   # touch: (2, 2) is now LRU
        cache.preprocess(1, 2, True)   # evicts (2, 2)
        assert len(cache) == 2 and cache.evictions == 1
        cache.preprocess(3, 2, True)   # survivor: still a hit
        assert cache.hits == 2
        cache.preprocess(2, 2, True)   # victim: rebuilt as a miss
        assert cache.misses == 4

    def test_ttl_expiry_rebuilds_identically(self):
        clock = [0.0]
        graph = paper_figure1_graph().freeze()
        cache = ArtifactCache(graph, ttl=5.0, clock=lambda: clock[0])
        before, delta_before = cache.preprocess(3, 2, True)
        clock[0] = 4.0
        assert cache.preprocess(3, 2, True)[0] is before  # still fresh
        clock[0] = 10.0
        after, delta_after = cache.preprocess(3, 2, True)
        assert cache.expirations == 1 and cache.misses == 2
        assert after is not before
        assert after.alive == before.alive
        assert after.cores == before.cores
        assert delta_after.as_dict() == delta_before.as_dict()

    def test_bound_validation(self):
        graph = paper_figure1_graph().freeze()
        for bad in (0, -1, True, "8"):
            with pytest.raises(ParameterError):
                ArtifactCache(graph, max_entries=bad)
        for bad in (0, -2.5):
            with pytest.raises(ParameterError):
                ArtifactCache(graph, ttl=bad)


class TestCacheEviction:
    """Warm results stay bitwise cold-identical across any eviction."""

    @given(st.data())
    @settings(max_examples=3, deadline=None)
    def test_warm_equals_cold_across_size_and_ttl_evictions(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        clock = [0.0]
        queries = [
            {"d": d, "s": s, "k": k, "method": method, "seed": 5}
            for method in METHODS
        ] * 2
        with DCCEngine(graph, jobs=1) as reference:
            cold = [reference.search(**dict(query)) for query in queries]
        # max_entries=1 thrashes every artifact class; the crawling
        # clock expires whatever survives the size cap.
        with DCCEngine(graph, jobs=1, cache_max_entries=1,
                       cache_ttl=0.5) as engine:
            engine._cache._clock = lambda: clock[0]
            evicted = []
            for query in queries:
                clock[0] += 0.4
                evicted.append(engine.search(**dict(query)))
            churn = engine.info()
        assert churn["cache_evictions"] + churn["cache_expirations"] > 0
        for one, two in zip(cold, evicted):
            assert_identical(one, two, (d, s, k))

    def test_engine_forwards_bounds_to_its_cache(self):
        with DCCEngine(paper_figure1_graph(), jobs=1, cache_max_entries=3,
                       cache_ttl=60.0) as engine:
            assert engine._cache.max_entries == 3
            assert engine._cache.ttl == 60.0
            # Bounds survive a rebind — the fresh cache is bounded too.
            engine._source.add_vertex("fresh")
            engine.search(2, 1, 1)
            assert engine.invalidations == 1
            assert engine._cache.max_entries == 3
            assert engine._cache.ttl == 60.0


# ----------------------------------------------------------------------
# 3. invalidation on source-graph mutation
# ----------------------------------------------------------------------


class TestInvalidation:
    def _ring(self, n=12):
        graph = MultiLayerGraph(2, vertices=range(n))
        for i in range(n):
            graph.add_edge(0, i, (i + 1) % n)
            graph.add_edge(1, i, (i + 1) % n)
        return graph

    @pytest.mark.parametrize("mutate", [
        lambda g: g.add_edge(0, 0, 2),
        lambda g: g.remove_edge(1, 0, 1),
        lambda g: g.add_vertex("fresh"),
        lambda g: g.remove_vertex(3),
    ])
    def test_every_mutation_kind_invalidates(self, mutate):
        graph = self._ring()
        with DCCEngine(graph, jobs=1) as engine:
            engine.search(2, 1, 2)
            mutate(graph)
            after = engine.search(2, 1, 2)
            assert engine.invalidations == 1
        fresh = search_dccs(graph, 2, 1, 2, jobs=1)
        assert_identical(after, fresh)

    def test_mutation_clears_cached_artifacts(self):
        graph = self._ring()
        with DCCEngine(graph, jobs=1) as engine:
            engine.search(2, 1, 2, method="bottom-up")
            before = engine.info()["cache_entries"]
            assert before > 0
            graph.add_edge(0, 0, 5)
            engine.search(2, 1, 2, method="bottom-up")
            status = engine.info()
        # The rebind threw the old cache away: only the post-mutation
        # query's artifacts remain, all of them fresh misses.
        assert status["cache_hits"] == 0
        assert status["mutation_version"] == graph.mutation_version

    def test_results_never_stale_after_topology_change(self):
        # The mutation makes vertex 0's neighbourhood 3-dense on layer 0;
        # a stale engine would keep reporting the old, smaller answer.
        graph = self._ring()
        with DCCEngine(graph, jobs=1) as engine:
            sparse = engine.search(3, 1, 1)
            assert sparse.sets == []
            for u in range(4):
                for v in range(u + 1, 4):
                    if not graph.has_edge(0, u, v):
                        graph.add_edge(0, u, v)
            dense = engine.search(3, 1, 1)
        assert dense.sets != []

    def test_frozen_source_never_invalidates(self):
        frozen = self._ring().freeze()
        with DCCEngine(frozen, jobs=1) as engine:
            engine.search(2, 1, 2)
            engine.search(2, 2, 2)
            assert engine.invalidations == 0

    def _densify_corner(self, graph):
        """Make vertices 0..3 a 3-dense clique on layer 0."""
        for u in range(4):
            for v in range(u + 1, 4):
                if not graph.has_edge(0, u, v):
                    graph.add_edge(0, u, v)

    @staticmethod
    def _racy_start(real_start, on_finish):
        """A ``start_query`` wrapper firing ``on_finish`` after execution.

        The writer-lands-mid-flight injection point: the wrapped
        pending's ``finish`` completes the real collection first, then
        runs the mutation — exactly the window between worker execution
        and the engine's collect-time staleness re-check.
        """

        class RacyPending:
            def __init__(self, pending):
                self._pending = pending

            def waitables(self):
                return self._pending.waitables()

            def finish(self, pool):
                result = self._pending.finish(pool)
                on_finish()
                return result

        def start(graph, query, pool, stats=None, artifacts=None):
            return RacyPending(real_start(graph, query, pool, stats=stats,
                                          artifacts=artifacts))

        return start

    def test_mutation_mid_search_retries_on_fresh_snapshot(self,
                                                           monkeypatch):
        # Regression for the check-then-act race: mutation_version is
        # checked before submission, so a mutation landing while the
        # search is in flight used to be served from the stale frozen
        # snapshot.  The collect-time re-check must discard the stale
        # attempt and retry against the rebound session.
        from repro.engine import session as session_module

        graph = self._ring()
        fired = []

        def writer():
            if not fired:
                fired.append(True)
                self._densify_corner(graph)  # the writer lands mid-flight

        monkeypatch.setattr(
            session_module, "start_query",
            self._racy_start(session_module.start_query, writer),
        )
        with DCCEngine(graph, jobs=1) as engine:
            served = engine.search(3, 1, 1)
            assert engine.invalidations == 1
        fresh = search_dccs(graph, 3, 1, 1, jobs=1)
        assert served.sets != []  # the stale snapshot would report []
        assert_identical(served, fresh)

    def test_mutation_mid_batch_retries_whole_batch(self, monkeypatch):
        from repro.engine import session as session_module

        graph = self._ring()
        real = session_module.execute_query_batch
        fired = []

        def racy(search_graph, specs, pool, artifacts=None):
            results = real(search_graph, specs, pool, artifacts=artifacts)
            if not fired:
                fired.append(True)
                self._densify_corner(graph)
            return results

        monkeypatch.setattr(session_module, "execute_query_batch", racy)
        with DCCEngine(graph, jobs=1) as engine:
            first, second = engine.search_many([
                {"d": 3, "s": 1, "k": 1},
                {"d": 2, "s": 2, "k": 2},
            ])
            assert engine.invalidations == 1
        assert first.sets != []
        assert_identical(first, search_dccs(graph, 3, 1, 1, jobs=1))
        assert_identical(second, search_dccs(graph, 2, 2, 2, jobs=1))

    def test_mutation_during_both_attempts_raises_never_stale(
            self, monkeypatch):
        # A writer outrunning the retry means neither attempt's results
        # are current; delivering either would violate the never-stale
        # contract, so the search must fail (with the session rebound,
        # so an immediate retry works).
        from repro.engine import session as session_module
        from repro.utils.errors import StaleResultError

        graph = self._ring()
        real = session_module.start_query

        def writer():
            graph.add_edge(0, 0, graph.mutation_version % 5 + 2)

        monkeypatch.setattr(session_module, "start_query",
                            self._racy_start(real, writer))
        with DCCEngine(graph, jobs=1) as engine:
            with pytest.raises(StaleResultError):
                engine.search(2, 1, 2)
            assert engine.invalidations == 2
            # The writer quiesces: the rebound session serves normally.
            monkeypatch.setattr(session_module, "start_query", real)
            served = engine.search(2, 1, 2)
        assert_identical(served, search_dccs(graph, 2, 1, 2, jobs=1))

    def test_mid_search_mutation_does_not_double_charge_user_stats(
            self, monkeypatch):
        from repro.core.stats import SearchStats
        from repro.engine import session as session_module

        graph = self._ring()
        fired = []

        def writer():
            if not fired:
                fired.append(True)
                self._densify_corner(graph)

        monkeypatch.setattr(
            session_module, "start_query",
            self._racy_start(session_module.start_query, writer),
        )
        with DCCEngine(graph, jobs=1) as engine:
            mine = SearchStats()
            served = engine.search(3, 1, 1, stats=mine)
            assert served.stats is mine
        fresh = search_dccs(graph, 3, 1, 1, jobs=1)
        # Only the delivered (post-rebind) attempt may charge the
        # caller's accumulator — the discarded stale attempt is free.
        assert mine.as_dict() == fresh.stats.as_dict()

    def test_handle_not_stale_when_another_call_consumed_the_rebind(self):
        # A submitted handle's staleness signal can be *consumed* by a
        # later engine call: submit A, mutate, then a second search
        # rebinds the session before A is collected.  A's attempt rode
        # the dead snapshot, so collect must discard it and re-run
        # against the live bind — not deliver the stale answer the
        # now-current version check would otherwise wave through.
        graph = self._ring()
        with DCCEngine(graph, jobs=1) as engine:
            handle = engine.submit(3, 1, 1)
            self._densify_corner(graph)
            interposed = engine.search(2, 1, 2)  # rebinds, consumes signal
            assert engine.invalidations == 1
            served = handle.collect()
        assert served.sets != []  # the stale snapshot would report []
        assert_identical(served, search_dccs(graph, 3, 1, 1, jobs=1))
        assert_identical(interposed, search_dccs(graph, 2, 1, 2, jobs=1))

    def test_consumed_rebind_with_real_pool_is_not_a_worker_crash(self):
        # Pooled variant: the intervening rebind closes the pool the
        # handle's shard futures live on (cancelling them).  Collect
        # must recognise its bind is gone and re-run — a routine
        # mutation must never surface as WorkerCrashError or count as a
        # crash.
        graph = self._ring(n=10)
        with DCCEngine(graph, jobs=2) as engine:
            engine.warm()
            handle = engine.submit(2, 1, 2, method="greedy")
            self._densify_corner(graph)
            engine.search(3, 1, 1)  # rebinds: old pool closed
            served = handle.collect()
            assert engine._pool.crashes == 0
        assert_identical(served,
                         search_dccs(graph, 2, 1, 2, method="greedy",
                                     jobs=1))

    def test_mutation_version_counter(self):
        graph = self._ring()
        start = graph.mutation_version
        graph.add_edge(0, 0, 4)
        graph.add_edge(0, 0, 4)  # duplicate: no-op, no tick
        assert graph.mutation_version == start + 1
        graph.remove_edge(0, 0, 4)
        assert graph.mutation_version == start + 2
        assert graph.freeze().mutation_version == 0


# ----------------------------------------------------------------------
# 4. lifecycle: warm, close, pool fallback
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_pool_spawns_lazily_and_warm_forces_it(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=2) as engine:
            assert engine.info()["pool_spawned"] is False
            assert engine.warm() is True
            assert engine.info()["pool_spawned"] is True

    def test_single_worker_engine_never_spawns(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=1) as engine:
            assert engine.warm() is False
            engine.search(3, 2, 2)
            assert engine.info()["pool_spawned"] is False

    def test_closed_engine_raises(self):
        engine = DCCEngine(paper_figure1_graph(), jobs=1)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.search(1, 1, 1)
        with pytest.raises(EngineClosedError):
            engine.search_many([{"d": 1, "s": 1, "k": 1}])

    def test_abandoned_engine_pool_is_finalized(self):
        # The weakref.finalize safety net: an engine dropped without
        # close() must not leak its worker processes past garbage
        # collection (and, via finalize's atexit hook, past exit).
        import gc

        engine = DCCEngine(paper_figure1_graph(), jobs=2)
        assert engine.warm() is True
        finalizer = engine._pool._finalizer
        assert finalizer is not None and finalizer.alive
        del engine
        gc.collect()
        assert not finalizer.alive

    def test_close_detaches_the_finalizer(self):
        with DCCEngine(paper_figure1_graph(), jobs=2) as engine:
            engine.warm()
            finalizer = engine._pool._finalizer
            assert finalizer.alive
        assert not finalizer.alive

    def test_live_pool_count_tracks_spawned_pools(self):
        from repro.parallel import live_pool_count

        baseline = live_pool_count()
        with DCCEngine(paper_figure1_graph(), jobs=2) as engine:
            assert live_pool_count() == baseline
            engine.warm()
            assert live_pool_count() == baseline + 1
        assert live_pool_count() == baseline

    def test_spawn_failure_degrades_to_inline(self, monkeypatch):
        from repro.parallel import executor as executor_module

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise OSError("fork denied")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", BrokenPool
        )
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=4) as engine:
            broken = engine.search(3, 2, 2, method="bottom-up", seed=5)
            assert engine.info()["pool_inline_fallback"] is True
        healthy = search_dccs(graph, 3, 2, 2, method="bottom-up", seed=5,
                              jobs=1)
        assert_identical(broken, healthy)


# ----------------------------------------------------------------------
# 5. scratch arena safety
# ----------------------------------------------------------------------


class TestScratchArena:
    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_kernels_identical_with_and_without_arena(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=10, max_layers=3))
        d, s, _ = data.draw(search_parameters(graph))
        frozen = graph.freeze()
        layers = tuple(range(s))
        subset = set(range(0, frozen.num_vertices, 2))
        arena = ScratchArena()
        with arena:
            core_full = frozen_coherent_core(frozen, layers, d)
            core_sub = frozen_coherent_core(frozen, layers, d,
                                            within=subset)
            layer0 = frozen_layer_core(frozen, 0, d)
        assert core_full == frozen_coherent_core(frozen, layers, d)
        assert core_sub == frozen_coherent_core(frozen, layers, d,
                                                within=subset)
        assert layer0 == frozen_layer_core(frozen, 0, d)

    def test_arena_survives_graph_size_changes(self):
        arena = ScratchArena()
        small = paper_figure1_graph().freeze()
        big = MultiLayerGraph(1, vertices=range(40))
        for i in range(39):
            big.add_edge(0, i, i + 1)
        big_frozen = big.freeze()
        with arena:
            first = frozen_layer_core(small, 0, 2)
            second = frozen_layer_core(big_frozen, 0, 1)
            third = frozen_layer_core(small, 0, 2)
        assert first == third == frozen_layer_core(small, 0, 2)
        assert second == frozen_layer_core(big_frozen, 0, 1)

    def test_activation_nests_and_restores(self):
        outer, inner = ScratchArena(), ScratchArena()
        assert active_scratch() is None
        with outer:
            assert active_scratch() is outer
            with inner:
                assert active_scratch() is inner
            assert active_scratch() is outer
        assert active_scratch() is None

    def test_arena_actually_reuses_buffers(self):
        # The scratch arena is a python-tier mechanism; the numpy kernel
        # never touches it, so pin the tier the test is about.
        frozen = paper_figure1_graph().freeze()
        frozen.set_kernel("python")
        arena = ScratchArena()
        with arena:
            frozen_coherent_core(frozen, (0, 1), 3)
            frozen_coherent_core(frozen, (0, 1), 3)
        assert arena.reuses > 0


# ----------------------------------------------------------------------
# 6. harness and CLI plumbing
# ----------------------------------------------------------------------


class TestHarnessPlumbing:
    def test_measure_point_with_engine_matches_one_shot_rows(self):
        graph = MultiLayerGraph(2, vertices=range(30))
        for i in range(29):
            graph.add_edge(0, i, i + 1)
            graph.add_edge(1, i, i + 1)
        with DCCEngine(graph, jobs=2) as engine:
            engine_rows = measure_point(graph, 1, 1, 2,
                                        methods=["greedy"], engine=engine)
        one_shot_rows = measure_point(graph, 1, 1, 2, methods=["greedy"],
                                      jobs=2)
        for warm, cold in zip(engine_rows, one_shot_rows):
            assert warm["cover"] == cold["cover"]
            assert warm["dcc_calls"] == cold["dcc_calls"]
            assert warm["candidates"] == cold["candidates"]

    def test_measure_point_rejects_foreign_engine(self):
        graph = paper_figure1_graph()
        other = paper_figure1_graph()
        with DCCEngine(other, jobs=1) as engine:
            with pytest.raises(ParameterError):
                measure_point(graph, 1, 1, 1, methods=["greedy"],
                              engine=engine)

    def test_sweep_with_jobs_uses_one_session(self):
        graph = paper_figure1_graph()
        parallel_rows = sweep(graph, "k", (1, 2), {"d": 3, "s": 2, "k": 1},
                              methods=("greedy",), jobs=2)
        sequential_rows = sweep(graph, "k", (1, 2),
                                {"d": 3, "s": 2, "k": 1},
                                methods=("greedy",))
        for par, seq in zip(parallel_rows, sequential_rows):
            assert par["cover"] == seq["cover"]
            assert par["dcc_calls"] == seq["dcc_calls"]

    def test_cli_batch(self, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(
            '[{"d": 3, "s": 2, "k": 2},'
            ' {"d": 2, "s": 2, "k": 2, "method": "greedy"}]'
        )
        assert main(["batch", "figure1", str(queries), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch: 2 queries" in out
        assert "cover 13 vertices" in out

    def test_cli_batch_rejects_empty_payload(self, tmp_path, capsys):
        queries = tmp_path / "empty.json"
        queries.write_text("[]")
        assert main(["batch", "figure1", str(queries)]) == 2

    @pytest.mark.parametrize("payload", [
        '[[3, 2, 2]]',                       # entry is not an object
        '[{"d": 3, "s": 2, "k": 2}, 7]',     # mixed garbage
        '[{"d": 3, "s": 99, "k": 2}]',       # invalid parameters
    ])
    def test_cli_batch_rejects_malformed_queries(self, tmp_path, capsys,
                                                 payload):
        queries = tmp_path / "bad.json"
        queries.write_text(payload)
        assert main(["batch", "figure1", str(queries)]) == 2
        assert capsys.readouterr().err != ""

    def test_cli_info_reports_engine_status(self, capsys):
        assert main(["info", "ppi", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "engine_workers" in out
        assert "engine_cache_enabled: True" in out
