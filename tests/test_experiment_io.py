"""Tests for the CSV/JSONL/Markdown experiment writers."""

import pytest

from repro.experiments.io import (
    columns_of,
    read_csv,
    read_jsonl,
    to_markdown,
    write_csv,
    write_jsonl,
    write_markdown,
)
from repro.utils.errors import ParameterError

ROWS = [
    {"algorithm": "greedy", "s": 1, "time_s": 0.25},
    {"algorithm": "bottom-up", "s": 1, "time_s": 0.03, "extra": "x"},
]


class TestColumns:
    def test_union_in_order(self):
        assert columns_of(ROWS) == ["algorithm", "s", "time_s", "extra"]

    def test_explicit(self):
        assert columns_of(ROWS, ["s"]) == ["s"]


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv(ROWS, path)
        back = read_csv(path)
        assert back[0]["algorithm"] == "greedy"
        assert back[1]["extra"] == "x"
        assert back[0]["extra"] == ""

    def test_no_columns(self, tmp_path):
        with pytest.raises(ParameterError):
            write_csv([], tmp_path / "x.csv")


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl(ROWS, path)
        assert read_jsonl(path) == ROWS

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}]


class TestMarkdown:
    def test_table_shape(self):
        text = to_markdown(ROWS, ["algorithm", "time_s"])
        lines = text.splitlines()
        assert lines[0] == "| algorithm | time_s |"
        assert lines[1] == "| --- | --- |"
        assert "0.250" in lines[2]

    def test_write_with_title(self, tmp_path):
        path = tmp_path / "t.md"
        write_markdown(ROWS, path, title="Sweep")
        content = path.read_text()
        assert content.startswith("## Sweep")

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            to_markdown([])


class TestIntegrationWithSweeps:
    def test_sweep_rows_serialise(self, tmp_path):
        from repro.datasets import load
        from repro.experiments import sweep

        graph = load("ppi", scale=0.4).graph
        rows = sweep(graph, "s", (1, 2), {"d": 2, "s": 1, "k": 2},
                     ("bottom-up",))
        csv_path = write_csv(rows, tmp_path / "sweep.csv")
        jsonl_path = write_jsonl(rows, tmp_path / "sweep.jsonl")
        assert len(read_csv(csv_path)) == len(rows)
        assert read_jsonl(jsonl_path)[0]["algorithm"] == "bottom-up"
        assert "| algorithm" in to_markdown(rows, ["algorithm", "s"])
