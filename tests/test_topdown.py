"""Tests for the top-down DCCS algorithm (TD-DCCS) and its machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_dccs
from repro.core.dcc import coherent_core, is_coherent_dense
from repro.core.index import CoreHierarchyIndex
from repro.core.preprocess import order_layers, vertex_deletion
from repro.core.refine import refine_core, refine_potential, split_layer_classes
from repro.core.topdown import td_dccs
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.utils.errors import ParameterError
from tests.strategies import multilayer_graphs


class TestSplitLayerClasses:
    def test_root_everything_free(self):
        locked, free = split_layer_classes({0, 1, 2, 3}, 4)
        assert locked == set()
        assert free == {0, 1, 2, 3}

    def test_missing_middle(self):
        # positions {0, 1, 3} of 4: missing = {2}; locked = {0, 1}.
        locked, free = split_layer_classes({0, 1, 3}, 4)
        assert locked == {0, 1}
        assert free == {3}

    def test_missing_tail_locks_everything(self):
        # Missing = {3}: every position of L is below max(missing), so the
        # node is a dead end of the canonical tree (nothing removable).
        locked, free = split_layer_classes({0, 1, 2}, 4)
        assert locked == {0, 1, 2}
        assert free == set()


class TestTdDccs:
    def test_paper_example(self):
        result = td_dccs(paper_figure1_graph(), d=3, s=2, k=2)
        assert result.cover_size == 13
        assert result.algorithm == "top-down"

    def test_s_equals_l(self):
        g = paper_figure1_graph()
        result = td_dccs(g, d=3, s=4, k=3)
        assert len(result.sets) <= 1  # the root is the only candidate
        for layers, members in zip(result.labels, result.sets):
            assert is_coherent_dense(g, members, layers, 3)

    def test_parameter_validation(self):
        g = paper_figure1_graph()
        with pytest.raises(ParameterError):
            td_dccs(g, -1, 2, 2)
        with pytest.raises(ParameterError):
            td_dccs(g, 3, 0, 2)
        with pytest.raises(ParameterError):
            td_dccs(g, 3, 2, -1)

    def test_no_index_variant(self):
        g = paper_figure1_graph()
        with_index = td_dccs(g, d=3, s=2, k=2, use_index=True)
        without = td_dccs(g, d=3, s=2, k=2, use_index=False)
        assert with_index.cover_size == without.cover_size == 13

    def test_all_switches_off_keeps_ratio(self):
        g = paper_figure1_graph()
        result = td_dccs(
            g, d=3, s=2, k=2,
            use_vertex_deletion=False,
            use_layer_sorting=False,
            use_init_topk=False,
            use_order_pruning=False,
            use_potential_pruning=False,
            use_index=False,
        )
        assert 4 * result.cover_size >= 13
        for layers, members in zip(result.labels, result.sets):
            assert is_coherent_dense(g, members, layers, 3)

    @given(multilayer_graphs(max_vertices=8, max_layers=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_results_are_valid_dccs(self, graph, d, k):
        for s in range(1, graph.num_layers + 1):
            result = td_dccs(graph, d, s, k)
            assert len(result.sets) <= k
            for layers, members in zip(result.labels, result.sets):
                assert len(layers) == s
                assert is_coherent_dense(graph, members, layers, d)

    @given(multilayer_graphs(max_vertices=8, max_layers=3),
           st.integers(min_value=1, max_value=2),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_theorem4_approximation_ratio(self, graph, d, k):
        """TD cover >= 1/4 of the optimal cover (Theorem 4)."""
        for s in range(1, graph.num_layers + 1):
            optimum = exact_dccs(graph, d, s, k, max_candidates=64)
            result = td_dccs(graph, d, s, k)
            assert 4 * result.cover_size >= optimum.cover_size


class TestIndex:
    def test_index_partitions_vertices(self):
        g = paper_figure1_graph()
        index = CoreHierarchyIndex(g, d=3)
        assert set(index.level_of) == g.vertices()
        total = sum(len(batch) for _, batch in index.levels)
        assert total == g.num_vertices

    def test_thresholds_monotone_along_levels(self):
        g = paper_figure1_graph()
        index = CoreHierarchyIndex(g, d=3)
        thresholds = [threshold for threshold, _ in index.levels]
        assert thresholds == sorted(thresholds)

    def test_scope_lemma8(self):
        g = paper_figure1_graph()
        index = CoreHierarchyIndex(g, d=3)
        for size in (1, 2, 3, 4):
            scope = index.scope(size)
            # Every d-CC on `size` layers lives inside the scope.
            from itertools import combinations
            for layers in combinations(range(4), size):
                core = coherent_core(g, layers, 3)
                assert core <= scope

    def test_labels_cover_core_membership(self):
        g = paper_figure1_graph()
        index = CoreHierarchyIndex(g, d=3)
        # The dense block {a..i} is in every layer's 3-core at removal.
        for vertex in "abcdefghi":
            assert len(index.label[vertex]) == 4

    @given(multilayer_graphs(max_vertices=8, max_layers=3),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_reachable_scope_is_sound(self, graph, d):
        """Lemma 8 + Lemma 9 filters never exclude a d-CC member."""
        from itertools import combinations
        index = CoreHierarchyIndex(graph, d)
        for size in range(1, graph.num_layers + 1):
            for layers in combinations(range(graph.num_layers), size):
                core = coherent_core(graph, layers, d)
                zone = index.reachable_scope(layers, graph.vertices())
                assert core <= zone


class TestRefinement:
    def test_refine_potential_contains_descendant_cores(self):
        g = paper_figure1_graph()
        prep = vertex_deletion(g, 3, 2)
        order = order_layers(prep.cores, descending=False)
        # Child {1, 2, 3} of the root (dropping position 0): all its
        # positions stay removable, so its level-2 descendants are the
        # three pairs inside it — all must live inside the potential set.
        positions = frozenset({1, 2, 3})
        potential = refine_potential(
            g, 3, 2, prep.alive, positions, order, prep.cores
        )
        from itertools import combinations
        for pair in combinations(sorted(positions), 2):
            layers = sorted(order[p] for p in pair)
            assert coherent_core(g, layers, 3) <= set(potential)
        assert coherent_core(
            g, sorted(order[p] for p in positions), 3
        ) <= set(potential)

    @given(multilayer_graphs(max_vertices=8, max_layers=4),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_refine_core_equals_dcc(self, graph, d):
        """RefineC output == plain dCC on the same potential (DESIGN §5.6)."""
        from itertools import combinations
        index = CoreHierarchyIndex(graph, d)
        order = list(range(graph.num_layers))
        everything = graph.vertices()
        for size in range(1, graph.num_layers + 1):
            for positions in combinations(range(graph.num_layers), size):
                expected = coherent_core(graph, list(positions), d)
                got = refine_core(
                    graph, d, positions, everything, order, index
                )
                assert got == expected
