"""The paper's narrative claims, as executable tests.

Beyond the formal properties (tested elsewhere), the paper makes several
concrete claims in its introduction and proofs; this module pins them:

* the Theorem 1 reduction — max-k-cover instances map to DCCS instances
  with d = s = 1 and identical optima;
* the introduction's dilemma — the Fig. 1 dense block is *missed* by
  cross-graph quasi-cliques at γ >= 0.5 yet found as a 3-CC, while a
  sparse appendage *is* accepted at small γ;
* the diameter-2 property of γ >= 0.5 quasi-cliques, which bounds how
  large they can be.
"""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_dccs, max_k_cover_exact
from repro.baselines.quasiclique import is_quasi_clique
from repro.core.dcc import coherent_core
from repro.graph import MultiLayerGraph, paper_figure1_graph


def reduction_graph(family):
    """The Theorem 1 construction: one layer per set, a clique per set."""
    vertices = set()
    for members in family:
        vertices |= set(members)
    graph = MultiLayerGraph(max(1, len(family)), vertices=vertices)
    for layer, members in enumerate(family):
        members = sorted(members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(layer, u, v)
    return graph


class TestTheorem1Reduction:
    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=9),
                          min_size=2, max_size=5),
            min_size=1, max_size=5,
        ),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_dccs_solves_max_k_cover(self, family, k):
        """DCCS with d = s = 1 on the reduction == max-k-cover optimum."""
        graph = reduction_graph(family)
        dccs_opt = exact_dccs(graph, d=1, s=1, k=k, max_candidates=64)
        picked = max_k_cover_exact([frozenset(m) for m in family], k)
        cover = set()
        for index in picked:
            cover |= family[index]
        assert dccs_opt.cover_size == len(cover)

    def test_single_layer_core_is_the_set(self):
        family = [frozenset({1, 2, 3}), frozenset({3, 4})]
        graph = reduction_graph(family)
        for layer, members in enumerate(family):
            assert coherent_core(graph, [layer], 1) == members


class TestIntroductionDilemma:
    def test_dense_block_missed_by_strict_quasi_cliques(self):
        """For γ >= 0.5 the 9-vertex block is not a quasi-clique on any
        layer (it is a sparse circulant), yet it is a 3-CC everywhere."""
        graph = paper_figure1_graph()
        block = set("abcdefghi")
        for layer in graph.layers():
            assert not is_quasi_clique(graph, layer, block, 0.8)
            assert block <= coherent_core(graph, [layer], 3)

    def test_loose_gamma_admits_sparse_sets(self):
        """For small γ, loosely connected sets pass the quasi-clique test
        — the false-positive half of the dilemma."""
        graph = paper_figure1_graph()
        appendage = {"g", "h", "i", "j"}
        # j has only 2 of its 3 possible neighbours; γ = 0.3 needs just
        # ceil(0.9) = 1 neighbour, so the sparse set qualifies.
        assert is_quasi_clique(graph, 0, appendage, 0.3)
        # ...but it is never part of a 3-CC.
        assert "j" not in coherent_core(graph, [0], 3)

    def test_dcc_has_no_diameter_limit(self):
        """A long 3-regular-ish ring is one single d-CC despite a large
        diameter — the structural advantage over quasi-cliques."""
        n = 30
        graph = MultiLayerGraph(2, vertices=range(n))
        for layer in graph.layers():
            for i in range(n):
                graph.add_edge(layer, i, (i + 1) % n)
                graph.add_edge(layer, i, (i + 2) % n)
        core = coherent_core(graph, [0, 1], 3)
        assert core == frozenset(range(n))
        # The same ring can never be a 0.5-quasi-clique: that would need
        # degree >= ceil(0.5 * 29) = 15, but the ring has degree 4.
        assert not is_quasi_clique(graph, 0, set(range(n)), 0.5)


class TestDiameterBound:
    @pytest.mark.parametrize("size", [4, 5, 6])
    def test_gamma_half_quasi_cliques_have_diameter_two(self, size):
        """Exhaustive check on small graphs: any 0.5-quasi-clique found
        has diameter <= 2 (the [11] theorem the paper cites)."""
        import random

        rng = random.Random(7)
        for _ in range(20):
            graph = MultiLayerGraph(1, vertices=range(size + 2))
            for i in range(size + 2):
                for j in range(i + 1, size + 2):
                    if rng.random() < 0.5:
                        graph.add_edge(0, i, j)
            for combo in combinations(range(size + 2), size):
                if not is_quasi_clique(graph, 0, combo, 0.5):
                    continue
                members = set(combo)
                adjacency = graph.adjacency(0)
                for u in members:
                    reach = ({u} | (adjacency[u] & members))
                    reach |= {
                        w
                        for v in adjacency[u] & members
                        for w in adjacency[v] & members
                    }
                    assert members <= reach
