"""Tests for the unified search API and cross-algorithm consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import choose_method, search_dccs
from repro.core.dcc import is_coherent_dense
from repro.core.stats import SearchStats
from repro.graph import paper_figure1_graph
from repro.utils.errors import ParameterError
from tests.strategies import multilayer_graphs


class TestDispatch:
    def test_choose_method_small_s(self):
        assert choose_method(10, 3) == "bottom-up"
        assert choose_method(10, 4) == "bottom-up"

    def test_choose_method_large_s(self):
        assert choose_method(10, 5) == "top-down"
        assert choose_method(10, 10) == "top-down"

    def test_auto_dispatch(self):
        g = paper_figure1_graph()
        assert search_dccs(g, 3, 1, 2).algorithm == "bottom-up"
        assert search_dccs(g, 3, 3, 2).algorithm == "top-down"

    def test_explicit_methods(self):
        g = paper_figure1_graph()
        for method, name in (
            ("greedy", "greedy"),
            ("bottom-up", "bottom-up"),
            ("top-down", "top-down"),
        ):
            assert search_dccs(g, 3, 2, 2, method=method).algorithm == name

    def test_unknown_method(self):
        with pytest.raises(ParameterError):
            search_dccs(paper_figure1_graph(), 3, 2, 2, method="magic")

    def test_seed_is_ignored_by_non_td(self):
        g = paper_figure1_graph()
        result = search_dccs(g, 3, 2, 2, method="greedy", seed=7)
        assert result.algorithm == "greedy"

    def test_shared_stats(self):
        stats = SearchStats()
        search_dccs(paper_figure1_graph(), 3, 2, 2, method="bottom-up",
                    stats=stats)
        assert stats.dcc_calls > 0

    def test_result_params_recorded(self):
        result = search_dccs(paper_figure1_graph(), 3, 2, 2)
        assert result.params == (3, 2, 2)
        assert result.elapsed >= 0.0


class TestCrossAlgorithmConsistency:
    @given(multilayer_graphs(max_vertices=8, max_layers=4),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_all_algorithms_return_valid_sets(self, graph, d):
        k = 2
        for s in range(1, graph.num_layers + 1):
            for method in ("greedy", "bottom-up", "top-down"):
                result = search_dccs(graph, d, s, k, method=method)
                for layers, members in zip(result.labels, result.sets):
                    assert is_coherent_dense(graph, members, layers, d)

    @given(multilayer_graphs(max_vertices=8, max_layers=3))
    @settings(max_examples=40, deadline=None)
    def test_search_covers_are_comparable(self, graph):
        """BU and TD stay within 4x of greedy's cover (both are 1/4-approx
        while greedy is (1-1/e)-approx of the same optimum)."""
        d, s, k = 1, min(2, graph.num_layers), 2
        greedy = search_dccs(graph, d, s, k, method="greedy")
        for method in ("bottom-up", "top-down"):
            result = search_dccs(graph, d, s, k, method=method)
            assert 4 * result.cover_size >= greedy.cover_size

    def test_deterministic_given_seed(self):
        g = paper_figure1_graph()
        first = search_dccs(g, 3, 2, 2, method="top-down", seed=3)
        second = search_dccs(g, 3, 2, 2, method="top-down", seed=3)
        assert sorted(map(sorted, first.sets)) == sorted(map(sorted, second.sets))
