#!/usr/bin/env python
"""Network smoke for the socket serving tier (`repro serve --port`).

What CI proves with this script, end to end over a real TCP socket:

1. `repro serve --port 0` comes up, prints its bound port to stderr,
   and accepts concurrent connections;
2. several scripted clients pipelining the same duplicate-heavy
   request list all receive byte-identical response payloads
   (timing fields aside) — the network-level determinism contract;
3. the cross-time result cache actually served: the `stats` protocol
   op reports non-zero cache hits for the repeated specs;
4. streaming updates hold up end to end: an interleaved
   query/update/query client mutates a served graph through the
   `{"op": "update"}` protocol op, every post-update answer matches a
   fresh `DCCHost` built over an identically mutated graph (the
   rebind-the-world baseline), reverting the mutation restores the
   pre-update payload byte for byte, and the `stats` op reports the
   applied batches;
5. SIGINT drains and exits cleanly (exit code 0).

No third-party dependencies (the streaming baseline imports the
in-tree `repro` package), so the smoke runs on a bare checkout: no
pytest — `python tools/serve_smoke.py` from the repo root.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CLIENTS = 3
REQUESTS = [
    {"graph": "quickstart", "d": 3, "s": 2, "k": 2},
    {"graph": "english", "d": 2, "s": 2, "k": 3},
    {"graph": "quickstart", "d": 3, "s": 2, "k": 2},  # duplicate
    {"graph": "quickstart", "d": 2, "s": 2, "k": 2, "method": "greedy"},
]


def start_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         os.path.join(ROOT, "examples", "host_queries.json"),
         "--scale", "0.1", "--jobs", "1", "--port", "0"],
        stderr=subprocess.PIPE, cwd=ROOT, env=env, text=True,
    )
    # The CLI announces "serving on <bind>:<port>" on stderr once bound.
    line = process.stderr.readline()
    match = re.search(r"serving on [^:]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(
            "server did not announce its port; got stderr: "
            "{!r}".format(line)
        )
    return process, int(match.group(1))


async def run_client(port, tag):
    reader, writer = await asyncio.open_connection("127.0.0.1", port,
                                                   limit=1 << 20)
    for number, request in enumerate(REQUESTS):
        entry = dict(request, id="{}-{}".format(tag, number))
        writer.write((json.dumps(entry) + "\n").encode())
    await writer.drain()
    responses = {}
    for _ in REQUESTS:
        response = json.loads(await reader.readline())
        number = int(response["id"].rsplit("-", 1)[1])
        responses[number] = response
    writer.close()
    await writer.wait_closed()
    return responses


async def fetch_stats(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port,
                                                   limit=1 << 20)
    writer.write(b'{"op": "stats"}\n')
    await writer.drain()
    payload = json.loads(await reader.readline())
    writer.close()
    await writer.wait_closed()
    return payload["stats"]


def comparable(response):
    payload = dict(response)
    for field in ("seq", "id", "elapsed_s"):
        payload.pop(field, None)
    return payload


# ----------------------------------------------------------------------
# streaming phase: interleaved updates + queries vs fresh-host baseline
# ----------------------------------------------------------------------

STREAM_QUERY = {"graph": "quickstart", "d": 2, "s": 2, "k": 2,
                "method": "greedy"}
# Must match start_server's CLI flags: the fresh-host baseline rebuilds
# the served graph with the exact same loader arguments.
SERVE_SCALE, SERVE_SEED = 0.1, 0


def _repro():
    """Import the in-tree package (baseline only; clients stay pure)."""
    path = os.path.join(ROOT, "src")
    if path not in sys.path:
        sys.path.insert(0, path)


def stream_updates():
    """A remove-then-restore update script over a real served edge."""
    _repro()
    from repro.cli import _load_graph

    probe = _load_graph("figure1", SERVE_SCALE, SERVE_SEED)
    vertices = sorted(probe.vertices(), key=repr)
    u, v = next((a, b) for a in vertices for b in vertices
                if repr(a) < repr(b) and probe.has_edge(0, a, b))
    return [
        {"op": "update", "graph": "quickstart", "remove": [[0, u, v]]},
        {"op": "update", "graph": "quickstart", "add": [[0, u, v]]},
    ]


def fresh_host_baseline(updates):
    """The rebind-the-world answer: cold host over a pre-mutated graph."""
    _repro()
    from repro.aio import format_response
    from repro.cli import _load_graph
    from repro.host import DCCHost

    graph = _load_graph("figure1", SERVE_SCALE, SERVE_SEED)
    for update in updates:
        graph.apply_delta(
            add=[tuple(edge) for edge in update.get("add", [])],
            remove=[tuple(edge) for edge in update.get("remove", [])],
        )
    with DCCHost() as host:
        host.attach("quickstart", graph)
        result = host.search_many([dict(STREAM_QUERY)])[0]
    return comparable(format_response(0, None, result=result))


async def run_stream_phase(port):
    updates = stream_updates()
    reader, writer = await asyncio.open_connection("127.0.0.1", port,
                                                   limit=1 << 20)

    async def ask(payload):
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())

    before = await ask(dict(STREAM_QUERY, id="s-before"))
    removed = await ask(dict(updates[0], id="s-remove"))
    mid = await ask(dict(STREAM_QUERY, id="s-mid"))
    restored = await ask(dict(updates[1], id="s-restore"))
    after = await ask(dict(STREAM_QUERY, id="s-after"))
    writer.close()
    await writer.wait_closed()

    for response in (before, removed, mid, restored, after):
        assert response["ok"], \
            "streaming step failed: {!r}".format(response)
    assert removed["update"]["applied"] == 1, removed
    assert restored["update"]["applied"] == 1, restored
    # Post-update answers must match a cold host over an identically
    # mutated graph — the long-lived server's caches may not leak
    # pre-update state across the mutation.
    assert comparable(before) == fresh_host_baseline([]), \
        "pre-update answer deviates from fresh host"
    assert comparable(mid) == fresh_host_baseline(updates[:1]), \
        "post-update answer deviates from fresh host over mutated graph"
    assert comparable(after) == comparable(before), \
        "reverting the update did not restore the original answer"


async def smoke(port):
    per_client = await asyncio.gather(*(
        run_client(port, "c{}".format(tag)) for tag in range(CLIENTS)
    ))
    failures = [response
                for responses in per_client
                for response in responses.values() if not response["ok"]]
    assert not failures, "server answered errors: {!r}".format(failures)
    # Bitwise-equal responses: every client, every duplicate, the same
    # payload for the same spec.
    reference = per_client[0]
    for responses in per_client[1:]:
        for number in reference:
            assert comparable(responses[number]) == \
                comparable(reference[number]), \
                "clients disagree on request {}".format(number)
    assert comparable(reference[0]) == comparable(reference[2]), \
        "duplicate spec answered differently"
    stats = await fetch_stats(port)
    hits = stats["serving"]["result_cache"]["hits"]
    cached = stats["serving"]["requests_cached"]
    assert hits > 0 and cached > 0, \
        "repeated specs never hit the result cache: {!r}".format(
            stats["serving"]["result_cache"])
    await run_stream_phase(port)
    stats = await fetch_stats(port)
    assert stats["serving"]["updates_applied"] == 2, \
        "stats op lost the applied update batches: {!r}".format(
            stats["serving"].get("updates_applied"))
    assert stats["serving"]["update_latency"]["count"] == 2, \
        "update latency went unrecorded"
    return stats


def main():
    process, port = start_server()
    try:
        stats = asyncio.run(asyncio.wait_for(smoke(port), timeout=120))
    except BaseException:
        process.kill()
        process.wait()
        raise
    process.send_signal(signal.SIGINT)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("server did not drain and exit on SIGINT")
    assert code == 0, "server exited {} after SIGINT".format(code)
    print("serve smoke: {} clients x {} requests OK | cache hits {} | "
          "streaming updates applied {} (fresh-host equivalent) | "
          "server counters {}".format(
              CLIENTS, len(REQUESTS),
              stats["serving"]["result_cache"]["hits"],
              stats["serving"]["updates_applied"],
              stats["server"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
