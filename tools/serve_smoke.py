#!/usr/bin/env python
"""Network smoke for the socket serving tier (`repro serve --port`).

What CI proves with this script, end to end over a real TCP socket:

1. `repro serve --port 0` comes up, prints its bound port to stderr,
   and accepts concurrent connections;
2. several scripted clients pipelining the same duplicate-heavy
   request list all receive byte-identical response payloads
   (timing fields aside) — the network-level determinism contract;
3. the cross-time result cache actually served: the `stats` protocol
   op reports non-zero cache hits for the repeated specs;
4. SIGINT drains and exits cleanly (exit code 0).

Stdlib only, so the smoke runs on a bare checkout: no pytest, no
dependencies — `python tools/serve_smoke.py` from the repo root.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CLIENTS = 3
REQUESTS = [
    {"graph": "quickstart", "d": 3, "s": 2, "k": 2},
    {"graph": "english", "d": 2, "s": 2, "k": 3},
    {"graph": "quickstart", "d": 3, "s": 2, "k": 2},  # duplicate
    {"graph": "quickstart", "d": 2, "s": 2, "k": 2, "method": "greedy"},
]


def start_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         os.path.join(ROOT, "examples", "host_queries.json"),
         "--scale", "0.1", "--jobs", "1", "--port", "0"],
        stderr=subprocess.PIPE, cwd=ROOT, env=env, text=True,
    )
    # The CLI announces "serving on <bind>:<port>" on stderr once bound.
    line = process.stderr.readline()
    match = re.search(r"serving on [^:]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(
            "server did not announce its port; got stderr: "
            "{!r}".format(line)
        )
    return process, int(match.group(1))


async def run_client(port, tag):
    reader, writer = await asyncio.open_connection("127.0.0.1", port,
                                                   limit=1 << 20)
    for number, request in enumerate(REQUESTS):
        entry = dict(request, id="{}-{}".format(tag, number))
        writer.write((json.dumps(entry) + "\n").encode())
    await writer.drain()
    responses = {}
    for _ in REQUESTS:
        response = json.loads(await reader.readline())
        number = int(response["id"].rsplit("-", 1)[1])
        responses[number] = response
    writer.close()
    await writer.wait_closed()
    return responses


async def fetch_stats(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port,
                                                   limit=1 << 20)
    writer.write(b'{"op": "stats"}\n')
    await writer.drain()
    payload = json.loads(await reader.readline())
    writer.close()
    await writer.wait_closed()
    return payload["stats"]


def comparable(response):
    payload = dict(response)
    for field in ("seq", "id", "elapsed_s"):
        payload.pop(field, None)
    return payload


async def smoke(port):
    per_client = await asyncio.gather(*(
        run_client(port, "c{}".format(tag)) for tag in range(CLIENTS)
    ))
    failures = [response
                for responses in per_client
                for response in responses.values() if not response["ok"]]
    assert not failures, "server answered errors: {!r}".format(failures)
    # Bitwise-equal responses: every client, every duplicate, the same
    # payload for the same spec.
    reference = per_client[0]
    for responses in per_client[1:]:
        for number in reference:
            assert comparable(responses[number]) == \
                comparable(reference[number]), \
                "clients disagree on request {}".format(number)
    assert comparable(reference[0]) == comparable(reference[2]), \
        "duplicate spec answered differently"
    stats = await fetch_stats(port)
    hits = stats["serving"]["result_cache"]["hits"]
    cached = stats["serving"]["requests_cached"]
    assert hits > 0 and cached > 0, \
        "repeated specs never hit the result cache: {!r}".format(
            stats["serving"]["result_cache"])
    return stats


def main():
    process, port = start_server()
    try:
        stats = asyncio.run(asyncio.wait_for(smoke(port), timeout=120))
    except BaseException:
        process.kill()
        process.wait()
        raise
    process.send_signal(signal.SIGINT)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("server did not drain and exit on SIGINT")
    assert code == 0, "server exited {} after SIGINT".format(code)
    print("serve smoke: {} clients x {} requests OK | cache hits {} | "
          "server counters {}".format(
              CLIENTS, len(REQUESTS),
              stats["serving"]["result_cache"]["hits"],
              stats["server"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
