#!/usr/bin/env python3
"""Link and reference checker for the documentation surface.

Run from anywhere (``python tools/check_docs.py``); CI runs it on every
push, and ``tests/test_docs.py`` runs the same checks inside tier-1, so
README/docs rot is caught even in a plain local test run.

Checked documents: ``README.md`` and every ``docs/*.md``.  Three rules:

1. every relative markdown link target resolves to an existing file or
   directory (anchors stripped; ``http(s)``/``mailto`` links are out of
   scope — no network in CI);
2. every repo path mentioned in inline code spans resolves: tokens
   containing ``/`` and ending in a known suffix (or ``/`` for
   directories) are treated as repo-root-relative paths, and bare
   ``*.txt`` tokens as ``benchmarks/results/`` entries;
3. every figure benchmark on disk (``benchmarks/test_fig*.py``) is
   mentioned in ``docs/experiments.md`` — the figure mapping table may
   not silently fall behind the bench suite.
"""

import glob
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
PATH_SUFFIXES = (".py", ".md", ".txt", ".json", ".yml", ".yaml", ".toml")
RESULTS_DIR = "benchmarks/results"


def checked_documents():
    documents = [os.path.join(ROOT, "README.md")]
    documents += sorted(glob.glob(os.path.join(ROOT, "docs", "*.md")))
    return documents


def _exists(path):
    return os.path.exists(os.path.join(ROOT, path))


def check_markdown_links(path, text):
    """Rule 1: relative markdown link targets must resolve."""
    problems = []
    base = os.path.relpath(os.path.dirname(path), ROOT)
    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # pure in-page anchor
        resolved = os.path.normpath(os.path.join(base, target))
        if not _exists(resolved):
            problems.append(
                "{}: broken link target {!r}".format(
                    os.path.relpath(path, ROOT), target
                )
            )
    return problems


def _looks_like_repo_path(token):
    if any(ch in token for ch in " *{}$<>="):
        return False
    if "/" in token:
        return token.endswith(PATH_SUFFIXES) or token.endswith("/")
    return token.endswith(".txt")


def check_code_span_paths(path, text):
    """Rule 2: inline-code repo paths must resolve."""
    problems = []
    for token in CODE_SPAN.findall(text):
        token = token.strip()
        if not _looks_like_repo_path(token):
            continue
        candidate = token.rstrip("/")
        if "/" not in token:
            candidate = os.path.join(RESULTS_DIR, token)
        if not _exists(candidate):
            problems.append(
                "{}: dangling path reference `{}`".format(
                    os.path.relpath(path, ROOT), token
                )
            )
    return problems


def check_figure_benchmarks_mapped():
    """Rule 3: docs/experiments.md covers every fig benchmark on disk."""
    experiments = os.path.join(ROOT, "docs", "experiments.md")
    if not os.path.exists(experiments):
        return ["docs/experiments.md is missing"]
    with open(experiments) as handle:
        text = handle.read()
    problems = []
    pattern = os.path.join(ROOT, "benchmarks", "test_fig*.py")
    for bench in sorted(glob.glob(pattern)):
        name = os.path.basename(bench)
        if name not in text:
            problems.append(
                "docs/experiments.md: benchmarks/{} is not in the "
                "figure mapping table".format(name)
            )
    return problems


def main():
    problems = []
    for path in checked_documents():
        if not os.path.exists(path):
            problems.append("missing document: {}".format(
                os.path.relpath(path, ROOT)
            ))
            continue
        with open(path) as handle:
            text = handle.read()
        problems += check_markdown_links(path, text)
        problems += check_code_span_paths(path, text)
    problems += check_figure_benchmarks_mapped()
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print("{} documentation problem(s)".format(len(problems)),
              file=sys.stderr)
        return 1
    print("docs OK: {} documents checked".format(len(checked_documents())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
